//! Hot-path allocation accounting.
//!
//! The workspace forbids `unsafe`, so a `#[global_allocator]` shim is off
//! the table; instead, every kernel-layer site that is *supposed* to reuse
//! a persistent buffer reports here when its reuse path misses and it has
//! to allocate fresh (e.g. a ghost-exchange send buffer still shared with
//! the in-flight message, a scratch vector that had to grow). Counters are
//! thread-local, which in the simulated cluster means **per node**: each
//! node program audits its own steady state.
//!
//! The contract asserted by `crates/core/tests/steady_state_alloc.rs` and
//! the CI `paper-scale` job: after setup, steady-state solver iterations
//! record **zero** misses — every pack/unpack, SpMV, and preconditioner
//! apply runs out of persistent workspaces.

use std::cell::Cell;

thread_local! {
    static ALLOC_MISSES: Cell<u64> = const { Cell::new(0) };
}

/// Record one reuse miss (a hot-path site allocated fresh memory).
#[inline]
pub fn record_alloc_miss() {
    ALLOC_MISSES.with(|c| c.set(c.get() + 1));
}

/// Misses recorded on this thread since the last [`reset_alloc_misses`].
pub fn alloc_misses() -> u64 {
    ALLOC_MISSES.with(Cell::get)
}

/// Zero this thread's miss counter (call after setup/warm-up).
pub fn reset_alloc_misses() {
    ALLOC_MISSES.with(|c| c.set(0));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts_and_resets() {
        reset_alloc_misses();
        assert_eq!(alloc_misses(), 0);
        record_alloc_miss();
        record_alloc_miss();
        assert_eq!(alloc_misses(), 2);
        reset_alloc_misses();
        assert_eq!(alloc_misses(), 0);
    }
}
