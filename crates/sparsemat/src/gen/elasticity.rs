//! 3-DOF structural-mechanics analog generators (wide-band patterns).
//!
//! The paper's largest matrices (Emilia_923, Geo_1438, Serena, audikw_1)
//! are 3-D structural problems with three degrees of freedom per mesh node
//! and 40–80 nonzeros per row concentrated in a wide band around the
//! diagonal — the *favourable* pattern class for the ESR redundancy scheme
//! (paper Secs. 5 and 7.2: high natural multiplicity, band ≥ ⌈φn/2N⌉).
//!
//! `elasticity3d` reproduces this class: a regular 3-D grid, 3 DOF per grid
//! point, symmetric random 3×3 coupling blocks on a chosen neighbour
//! stencil, and a strictly diagonally dominant diagonal block.

use crate::coo::Coo;
use crate::csr::Csr;
use crate::rng::Rng;

/// Which neighbour set couples grid points.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockStencil {
    /// 6 face neighbours (7-point): ~21 nnz/row.
    Faces7,
    /// faces + in-plane edge diagonals (15-point): ~45 nnz/row —
    /// Emilia_923-like (**M5'**).
    Edges15,
    /// faces + all edge diagonals (19-point): ~57 nnz/row —
    /// Geo_1438/Serena-like (**M6'**, **M7'**).
    Edges19,
    /// full 3×3×3 neighbourhood (27-point): ~81 nnz/row —
    /// audikw_1-like (**M8'**, the densest band of the test set).
    Full27,
}

impl BlockStencil {
    /// Half-stencil offsets; the symmetric counterparts are implied.
    fn offsets(self) -> Vec<(i64, i64, i64)> {
        let faces = vec![(1, 0, 0), (0, 1, 0), (0, 0, 1)];
        let edges_xy = vec![(1, 1, 0), (1, -1, 0)];
        let edges_xz = vec![(1, 0, 1), (1, 0, -1)];
        let edges_yz = vec![(0, 1, 1), (0, 1, -1)];
        let corners = vec![(1, 1, 1), (1, 1, -1), (1, -1, 1), (1, -1, -1)];
        let mut o = faces;
        match self {
            BlockStencil::Faces7 => {}
            BlockStencil::Edges15 => {
                o.extend(edges_xy);
                o.extend(edges_xz);
            }
            BlockStencil::Edges19 => {
                o.extend(edges_xy);
                o.extend(edges_xz);
                o.extend(edges_yz);
            }
            BlockStencil::Full27 => {
                o.extend(edges_xy);
                o.extend(edges_xz);
                o.extend(edges_yz);
                o.extend(corners);
            }
        }
        o
    }
}

/// A 3-D elasticity-like SPD operator: `nx·ny·nz` grid points × `dof`
/// unknowns each (`n = nx·ny·nz·dof`). `stiffness_jitter > 0` varies the
/// per-element coupling strength (Serena-like heterogeneous media).
pub fn elasticity3d(
    nx: usize,
    ny: usize,
    nz: usize,
    dof: usize,
    stencil: BlockStencil,
    stiffness_jitter: f64,
    seed: u64,
) -> Csr {
    assert!(dof >= 1);
    let points = nx * ny * nz;
    let n = points * dof;
    let offsets = stencil.offsets();
    let mut rng = Rng::new(seed);
    let mut coo = Coo::with_capacity(n, n, (2 * offsets.len() + 1) * dof * dof * points);
    let pidx = |x: i64, y: i64, z: i64| (z as usize * ny + y as usize) * nx + x as usize;
    let inside = |x: i64, y: i64, z: i64| {
        x >= 0 && y >= 0 && z >= 0 && (x as usize) < nx && (y as usize) < ny && (z as usize) < nz
    };
    // Row sums of absolute off-diagonal values, for the dominant diagonal.
    let mut rowsum = vec![0.0f64; n];
    let mut block = vec![0.0f64; dof * dof];
    for z in 0..nz as i64 {
        for y in 0..ny as i64 {
            for x in 0..nx as i64 {
                let p = pidx(x, y, z);
                // Intra-point dof coupling (full dof×dof diagonal blocks,
                // as in assembled elasticity operators).
                for a in 0..dof {
                    for b in (a + 1)..dof {
                        let v = -0.3 * rng.range_f64(0.5, 1.0);
                        coo.push_sym(p * dof + a, p * dof + b, v);
                        rowsum[p * dof + a] += v.abs();
                        rowsum[p * dof + b] += v.abs();
                    }
                }
                for &(ox, oy, oz) in &offsets {
                    let (xx, yy, zz) = (x + ox, y + oy, z + oz);
                    if !inside(xx, yy, zz) {
                        continue;
                    }
                    let q = pidx(xx, yy, zz);
                    // Element stiffness scale for this edge.
                    let scale = 1.0 + stiffness_jitter * (rng.next_f64() - 0.5);
                    // Symmetric dof×dof coupling block C = Cᵀ.
                    for a in 0..dof {
                        for b in a..dof {
                            let base = if a == b { -1.0 } else { -0.25 };
                            let v = base * scale * rng.range_f64(0.5, 1.0);
                            block[a * dof + b] = v;
                            block[b * dof + a] = v;
                        }
                    }
                    // A[(p,a),(q,b)] = C[a,b]; A[(q,b),(p,a)] mirrors it,
                    // so the assembled matrix is symmetric.
                    for a in 0..dof {
                        for b in 0..dof {
                            let v = block[a * dof + b];
                            coo.push_sym(p * dof + a, q * dof + b, v);
                            rowsum[p * dof + a] += v.abs();
                            rowsum[q * dof + b] += v.abs();
                        }
                    }
                }
            }
        }
    }
    for (i, &s) in rowsum.iter().enumerate() {
        coo.push(i, i, s + 0.01 * s.max(1.0));
    }
    coo.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_spd_and_symmetric() {
        for stencil in [
            BlockStencil::Faces7,
            BlockStencil::Edges15,
            BlockStencil::Edges19,
            BlockStencil::Full27,
        ] {
            let a = elasticity3d(3, 3, 3, 3, stencil, 0.2, 5);
            assert_eq!(a.n_rows(), 81);
            assert!(a.is_symmetric(1e-14), "{stencil:?}");
            assert!(a.to_dense().is_spd(), "{stencil:?}");
        }
    }

    #[test]
    fn nnz_per_row_grows_with_stencil() {
        let avg = |s: BlockStencil| {
            let a = elasticity3d(4, 4, 4, 3, s, 0.0, 1);
            a.nnz() as f64 / a.n_rows() as f64
        };
        let a7 = avg(BlockStencil::Faces7);
        let a15 = avg(BlockStencil::Edges15);
        let a19 = avg(BlockStencil::Edges19);
        let a27 = avg(BlockStencil::Full27);
        assert!(a7 < a15 && a15 < a19 && a19 < a27, "{a7} {a15} {a19} {a27}");
        // Interior rows of Full27 reach 81 nnz (27 points × 3 dof).
        let a = elasticity3d(5, 5, 5, 3, BlockStencil::Full27, 0.0, 1);
        let max_row = (0..a.n_rows()).map(|r| a.row(r).0.len()).max().unwrap();
        assert_eq!(max_row, 81);
    }

    #[test]
    fn deterministic() {
        let a = elasticity3d(3, 3, 2, 2, BlockStencil::Edges19, 0.3, 9);
        let b = elasticity3d(3, 3, 2, 2, BlockStencil::Edges19, 0.3, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn single_dof_reduces_to_scalar_stencil() {
        let a = elasticity3d(4, 4, 4, 1, BlockStencil::Faces7, 0.0, 3);
        assert_eq!(a.n_rows(), 64);
        let max_row = (0..a.n_rows()).map(|r| a.row(r).0.len()).max().unwrap();
        assert_eq!(max_row, 7);
    }

    #[test]
    fn diagonal_blocks_are_full() {
        // Row (P, 0) couples to (P, 1) and (P, 2) within the same point.
        let a = elasticity3d(3, 3, 3, 3, BlockStencil::Faces7, 0.0, 4);
        assert_ne!(a.get(0, 1), 0.0);
        assert_ne!(a.get(0, 2), 0.0);
    }
}
