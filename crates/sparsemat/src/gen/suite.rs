//! The paper's test set (Table 1), as scalable synthetic analogs.
//!
//! Each entry reproduces the *class* of one SuiteSparse matrix: its
//! application domain, nonzeros-per-row density, and — decisive for the ESR
//! overhead (paper Sec. 5) — its sparsity-pattern character (narrow band /
//! wide band / unstructured / scattered). `scale = 1.0` targets the paper's
//! problem sizes; benchmarks default to smaller scales (see EXPERIMENTS.md).

use crate::csr::Csr;
use crate::gen::elasticity::{elasticity3d, BlockStencil};
use crate::gen::graphs::{circuit_like, mesh_laplacian_2d, MeshOrdering};
use crate::gen::stencil::{fem3d, poisson3d};

/// Identifiers of the paper's eight test matrices (Table 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PaperMatrix {
    /// parabolic_fem analog: 3-D 7-point stencil, narrow band.
    M1,
    /// offshore analog: 3-D 19-point jittered stencil, medium band.
    M2,
    /// G3_circuit analog: scattered circuit graph (worst case).
    M3,
    /// thermal2 analog: unstructured 2-D mesh, Hilbert-ordered.
    M4,
    /// Emilia_923 analog: 3-DOF elasticity, 15-point block stencil.
    M5,
    /// Geo_1438 analog: 3-DOF elasticity, 19-point block stencil.
    M6,
    /// Serena analog: 3-DOF elasticity, 19-point, heterogeneous stiffness.
    M7,
    /// audikw_1 analog: 3-DOF elasticity, full 27-point block stencil
    /// (densest band; the paper's best case).
    M8,
}

/// Static description of one test problem.
#[derive(Clone, Copy, Debug)]
pub struct MatrixSpec {
    /// Which of the paper's eight test problems this is.
    pub id: PaperMatrix,
    /// The SuiteSparse matrix this stands in for.
    pub paper_name: &'static str,
    /// Application domain (paper Table 1's "Problem type").
    pub problem_type: &'static str,
    /// Size and nonzeros of the original (paper Table 1).
    pub paper_n: usize,
    /// Nonzeros of the original.
    pub paper_nnz: usize,
    /// Pattern class driving the ESR overhead behaviour.
    pub pattern: &'static str,
}

/// All eight specs in paper order (ordered by increasing paper NNZ).
pub const MATRICES: [MatrixSpec; 8] = [
    MatrixSpec {
        id: PaperMatrix::M1,
        paper_name: "parabolic_fem",
        problem_type: "Fluid dynamics",
        paper_n: 525_825,
        paper_nnz: 3_674_625,
        pattern: "narrow band",
    },
    MatrixSpec {
        id: PaperMatrix::M2,
        paper_name: "offshore",
        problem_type: "Electromagnetics",
        paper_n: 259_789,
        paper_nnz: 4_242_673,
        pattern: "medium band",
    },
    MatrixSpec {
        id: PaperMatrix::M3,
        paper_name: "G3_circuit",
        problem_type: "Circuit simulation",
        paper_n: 1_585_478,
        paper_nnz: 7_660_826,
        pattern: "scattered",
    },
    MatrixSpec {
        id: PaperMatrix::M4,
        paper_name: "thermal2",
        problem_type: "Thermal",
        paper_n: 1_228_045,
        paper_nnz: 8_580_313,
        pattern: "unstructured",
    },
    MatrixSpec {
        id: PaperMatrix::M5,
        paper_name: "Emilia_923",
        problem_type: "Structural",
        paper_n: 923_136,
        paper_nnz: 40_373_538,
        pattern: "wide band",
    },
    MatrixSpec {
        id: PaperMatrix::M6,
        paper_name: "Geo_1438",
        problem_type: "Structural",
        paper_n: 1_437_960,
        paper_nnz: 60_236_322,
        pattern: "wide band",
    },
    MatrixSpec {
        id: PaperMatrix::M7,
        paper_name: "Serena",
        problem_type: "Structural",
        paper_n: 1_391_349,
        paper_nnz: 64_131_971,
        pattern: "wide band",
    },
    MatrixSpec {
        id: PaperMatrix::M8,
        paper_name: "audikw_1",
        problem_type: "Structural",
        paper_n: 943_695,
        paper_nnz: 77_651_847,
        pattern: "dense band",
    },
];

/// Look up a spec.
pub fn spec(id: PaperMatrix) -> &'static MatrixSpec {
    MATRICES.iter().find(|s| s.id == id).unwrap()
}

fn cube_side(target_points: usize, scale: f64) -> usize {
    (((target_points as f64) * scale).cbrt().round() as usize).max(3)
}

fn square_side(target_points: usize, scale: f64) -> usize {
    (((target_points as f64) * scale).sqrt().round() as usize).max(3)
}

/// Generate the analog of `id` at the given `scale` of the paper's problem
/// size (`scale = 1.0` ≈ paper sizes; generation cost is O(nnz)).
pub fn generate(id: PaperMatrix, scale: f64) -> Csr {
    assert!(scale > 0.0);
    match id {
        PaperMatrix::M1 => {
            let s = cube_side(525_825, scale);
            poisson3d(s, s, s)
        }
        PaperMatrix::M2 => {
            let s = cube_side(259_789, scale);
            fem3d(s, s, s, 0xE5D2_0001)
        }
        PaperMatrix::M3 => {
            let n = ((1_585_478f64 * scale).round() as usize).max(64);
            circuit_like(n, 8, 0.05, 0xE5D2_0003)
        }
        PaperMatrix::M4 => {
            let s = square_side(1_228_045, scale);
            mesh_laplacian_2d(s, s, MeshOrdering::Hilbert, 0xE5D2_0004)
        }
        PaperMatrix::M5 => {
            let s = cube_side(923_136 / 3, scale);
            elasticity3d(s, s, s, 3, BlockStencil::Edges15, 0.0, 0xE5D2_0005)
        }
        PaperMatrix::M6 => {
            let s = cube_side(1_437_960 / 3, scale);
            elasticity3d(s, s, s, 3, BlockStencil::Edges19, 0.0, 0xE5D2_0006)
        }
        PaperMatrix::M7 => {
            let s = cube_side(1_391_349 / 3, scale);
            elasticity3d(s, s, s, 3, BlockStencil::Edges19, 0.8, 0xE5D2_0007)
        }
        PaperMatrix::M8 => {
            let s = cube_side(943_695 / 3, scale);
            elasticity3d(s, s, s, 3, BlockStencil::Full27, 0.2, 0xE5D2_0008)
        }
    }
}

/// All eight ids in paper order.
pub fn all_ids() -> [PaperMatrix; 8] {
    [
        PaperMatrix::M1,
        PaperMatrix::M2,
        PaperMatrix::M3,
        PaperMatrix::M4,
        PaperMatrix::M5,
        PaperMatrix::M6,
        PaperMatrix::M7,
        PaperMatrix::M8,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_scale_generates_all() {
        for id in all_ids() {
            let a = generate(id, 0.0005);
            assert!(a.n_rows() >= 27, "{id:?} too small: {}", a.n_rows());
            assert!(a.is_symmetric(1e-12), "{id:?} not symmetric");
        }
    }

    #[test]
    fn small_instances_are_spd() {
        for id in all_ids() {
            let a = generate(id, 0.0002);
            if a.n_rows() <= 1500 {
                assert!(a.to_dense().is_spd(), "{id:?} not SPD");
            }
        }
    }

    #[test]
    fn density_ordering_matches_paper() {
        // Structural matrices (M5–M8) are much denser per row than the
        // stencil/graph problems (M1, M3, M4) — as in Table 1.
        let density = |id| {
            let a = generate(id, 0.001);
            a.nnz() as f64 / a.n_rows() as f64
        };
        let d1 = density(PaperMatrix::M1);
        let d3 = density(PaperMatrix::M3);
        let d5 = density(PaperMatrix::M5);
        let d8 = density(PaperMatrix::M8);
        assert!(d1 < 8.0, "M1 {d1}");
        assert!(d3 < 9.0, "M3 {d3}");
        assert!(d5 > 25.0, "M5 {d5}");
        assert!(d8 > d5, "M8 {d8} vs M5 {d5}");
    }

    #[test]
    fn specs_cover_all_ids() {
        for id in all_ids() {
            assert_eq!(spec(id).id, id);
        }
    }

    #[test]
    fn scale_changes_size_monotonically() {
        let small = generate(PaperMatrix::M1, 0.0005).n_rows();
        let large = generate(PaperMatrix::M1, 0.004).n_rows();
        assert!(large > small);
    }
}
