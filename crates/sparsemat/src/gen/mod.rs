//! Synthetic SPD test-matrix generators.
//!
//! The paper evaluates on eight SuiteSparse matrices (Table 1) chosen to
//! span sparsity-pattern classes: narrow-band stencils, wide-band 3-DOF
//! structural problems, unstructured meshes, and scattered circuit
//! topologies. The generators here produce *scalable* synthetic matrices of
//! the same classes (see `suite` for the per-matrix mapping and DESIGN.md
//! for the substitution rationale).
//!
//! All generators return symmetric positive-definite matrices: either
//! classical M-matrices (stencil Laplacians) or symmetric strictly
//! diagonally dominant matrices with positive diagonal. The diagonal slack
//! `delta` controls conditioning — small slack gives Laplacian-like spectra
//! and realistic PCG iteration counts.

mod elasticity;
mod graphs;
mod stencil;
pub mod suite;

pub use elasticity::{elasticity3d, BlockStencil};
pub use graphs::{circuit_like, mesh_laplacian_2d, MeshOrdering};
pub use stencil::{banded_spd, fem3d, poisson2d, poisson3d};
pub use suite::{generate, PaperMatrix, MATRICES};

use crate::csr::Csr;
use crate::rng::Rng;

/// Right-hand side with known solution `x = 1`: `b = A·1`.
pub fn rhs_for_ones(a: &Csr) -> Vec<f64> {
    a.mul_vec(&vec![1.0; a.n_cols()])
}

/// Deterministic random right-hand side with entries in `[-1, 1)`.
pub fn random_rhs(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = Rng::new(seed);
    (0..n).map(|_| rng.range_f64(-1.0, 1.0)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rhs_for_ones_row_sums() {
        let a = poisson2d(3, 3);
        let b = rhs_for_ones(&a);
        // Interior row sums of the 5-point Laplacian are 0; boundary > 0.
        assert_eq!(b.len(), 9);
        assert!(b[4].abs() < 1e-14, "center row sums to zero");
        assert!(b[0] > 0.0, "corner row sums positive");
    }

    #[test]
    fn random_rhs_deterministic() {
        assert_eq!(random_rhs(10, 3), random_rhs(10, 3));
        assert_ne!(random_rhs(10, 3), random_rhs(10, 4));
    }
}
