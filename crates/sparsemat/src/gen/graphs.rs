//! Irregular-graph generators (unstructured and scattered patterns).
//!
//! Two pattern classes from the paper's test set are *not* banded:
//!
//! * **thermal2** — an unstructured FEM mesh: irregular but spatially local,
//!   so a locality-preserving node ordering still yields a quasi-banded
//!   matrix ([`mesh_laplacian_2d`] with [`MeshOrdering::Hilbert`]);
//! * **G3_circuit** — a circuit: mostly short-range connections plus
//!   genuinely long-range couplings that no ordering can localize
//!   ([`circuit_like`]). This is the paper's worst case — reconstruction
//!   after failures at the *center* of the index range costs up to 55%
//!   (Table 2, M3).

use crate::coo::Coo;
use crate::csr::Csr;
use crate::rng::Rng;

/// Node ordering for mesh generators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MeshOrdering {
    /// Row-major grid sweep: banded.
    Natural,
    /// Hilbert space-filling curve: excellent locality, irregular band.
    Hilbert,
    /// Random permutation: fully scattered (stress test).
    Random,
}

/// Graph Laplacian (+ small diagonal shift) of a jittered 2-D mesh:
/// `nx·ny` points, each connected to grid neighbours that survive a random
/// thinning, plus next-nearest links. Unstructured-FEM analog (**M4'**).
pub fn mesh_laplacian_2d(nx: usize, ny: usize, ordering: MeshOrdering, seed: u64) -> Csr {
    let n = nx * ny;
    let mut rng = Rng::new(seed);

    // Node numbering per the requested ordering.
    let number: Vec<usize> = match ordering {
        MeshOrdering::Natural => (0..n).collect(),
        MeshOrdering::Hilbert => {
            let side = (nx.max(ny)).next_power_of_two();
            let mut keys: Vec<(u64, usize)> = (0..n)
                .map(|i| {
                    let (x, y) = (i % nx, i / nx);
                    (hilbert_d(side as u64, x as u64, y as u64), i)
                })
                .collect();
            keys.sort_unstable();
            let mut num = vec![0usize; n];
            for (new, &(_, old)) in keys.iter().enumerate() {
                num[old] = new;
            }
            num
        }
        MeshOrdering::Random => {
            let mut num: Vec<usize> = (0..n).collect();
            rng.shuffle(&mut num);
            num
        }
    };

    let idx = |x: usize, y: usize| y * nx + x;
    let mut coo = Coo::with_capacity(n, n, 8 * n);
    let mut degree = vec![0.0f64; n];
    let add_edge = |coo: &mut Coo, degree: &mut [f64], a: usize, b: usize, w: f64| {
        let (na, nb) = (number[a], number[b]);
        coo.push_sym(na, nb, -w);
        degree[na] += w;
        degree[nb] += w;
    };
    for y in 0..ny {
        for x in 0..nx {
            let i = idx(x, y);
            // Grid edges survive with probability 0.85 (irregular mesh).
            if x + 1 < nx && rng.chance(0.85) {
                add_edge(
                    &mut coo,
                    &mut degree,
                    i,
                    idx(x + 1, y),
                    rng.range_f64(0.5, 1.5),
                );
            }
            if y + 1 < ny && rng.chance(0.85) {
                add_edge(
                    &mut coo,
                    &mut degree,
                    i,
                    idx(x, y + 1),
                    rng.range_f64(0.5, 1.5),
                );
            }
            // Occasional diagonal braces (triangulation flavour).
            if x + 1 < nx && y + 1 < ny && rng.chance(0.4) {
                add_edge(
                    &mut coo,
                    &mut degree,
                    i,
                    idx(x + 1, y + 1),
                    rng.range_f64(0.3, 1.0),
                );
            }
            if x >= 1 && y + 1 < ny && rng.chance(0.4) {
                add_edge(
                    &mut coo,
                    &mut degree,
                    i,
                    idx(x - 1, y + 1),
                    rng.range_f64(0.3, 1.0),
                );
            }
        }
    }
    for (i, &d) in degree.iter().enumerate() {
        coo.push(i, i, d + 0.02 * d.max(1.0));
    }
    coo.to_csr()
}

/// Circuit-topology analog (**M3'**): `n` nodes, short-range connections
/// within a `window`, plus a fraction `long_range` of links to uniformly
/// random distant nodes. Symmetric diagonally dominant Laplacian-like
/// matrix; the long-range links make the pattern *scattered* — the
/// unfavourable case for ESR redundancy (paper Secs. 5, 7.2).
pub fn circuit_like(n: usize, window: usize, long_range: f64, seed: u64) -> Csr {
    assert!(n >= 4 && window >= 1);
    let mut rng = Rng::new(seed);
    let mut coo = Coo::with_capacity(n, n, 6 * n);
    let mut degree = vec![0.0f64; n];
    for i in 0..n {
        // 1–2 short-range links (rail/neighbour wiring).
        let links = 1 + rng.below(2);
        for _ in 0..links {
            let off = 1 + rng.below(window);
            let j = (i + off) % n;
            let w = rng.range_f64(0.5, 2.0);
            coo.push_sym(i, j, -w);
            degree[i] += w;
            degree[j] += w;
        }
        // Occasional long-range link (global net: clock, power).
        if rng.chance(long_range) {
            let j = rng.below(n);
            if j != i {
                let w = rng.range_f64(0.1, 0.5);
                coo.push_sym(i, j, -w);
                degree[i] += w;
                degree[j] += w;
            }
        }
    }
    for (i, &d) in degree.iter().enumerate() {
        coo.push(i, i, d + 0.05 * d.max(1.0));
    }
    coo.to_csr()
}

/// Map `(x, y)` on a `side × side` grid (power of two) to its distance
/// along the Hilbert curve. Classic bit-twiddling construction.
fn hilbert_d(side: u64, mut x: u64, mut y: u64) -> u64 {
    let mut rx: u64;
    let mut ry: u64;
    let mut d: u64 = 0;
    let mut s = side / 2;
    while s > 0 {
        rx = u64::from((x & s) > 0);
        ry = u64::from((y & s) > 0);
        d += s * s * ((3 * rx) ^ ry);
        // Rotate/flip the quadrant.
        if ry == 0 {
            if rx == 1 {
                x = side - 1 - x;
                y = side - 1 - y;
            }
            std::mem::swap(&mut x, &mut y);
        }
        s /= 2;
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_is_spd_all_orderings() {
        for ord in [
            MeshOrdering::Natural,
            MeshOrdering::Hilbert,
            MeshOrdering::Random,
        ] {
            let a = mesh_laplacian_2d(6, 6, ord, 3);
            assert_eq!(a.n_rows(), 36);
            assert!(a.is_symmetric(1e-14), "{ord:?}");
            assert!(a.to_dense().is_spd(), "{ord:?}");
        }
    }

    #[test]
    fn orderings_change_bandwidth() {
        let nat = mesh_laplacian_2d(16, 16, MeshOrdering::Natural, 3).bandwidth();
        let rnd = mesh_laplacian_2d(16, 16, MeshOrdering::Random, 3).bandwidth();
        assert!(nat < rnd, "natural {nat} should beat random {rnd}");
    }

    #[test]
    fn circuit_is_spd_with_long_range() {
        let a = circuit_like(100, 4, 0.2, 11);
        assert!(a.is_symmetric(1e-14));
        assert!(a.to_dense().is_spd());
        // Long-range links give near-full bandwidth.
        assert!(a.bandwidth() > 50, "bandwidth {}", a.bandwidth());
    }

    #[test]
    fn circuit_degree_is_sparse() {
        let a = circuit_like(1000, 8, 0.05, 1);
        let avg = a.nnz() as f64 / a.n_rows() as f64;
        assert!(avg > 3.0 && avg < 9.0, "avg nnz/row {avg}");
    }

    #[test]
    fn hilbert_visits_every_cell_once() {
        let side = 8u64;
        let mut seen = vec![false; (side * side) as usize];
        for x in 0..side {
            for y in 0..side {
                let d = hilbert_d(side, x, y) as usize;
                assert!(!seen[d], "duplicate hilbert distance {d}");
                seen[d] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn hilbert_neighbours_are_close() {
        // Consecutive curve positions are grid neighbours — the locality
        // property the M4' ordering relies on.
        let side = 16u64;
        let mut pos = vec![(0u64, 0u64); (side * side) as usize];
        for x in 0..side {
            for y in 0..side {
                pos[hilbert_d(side, x, y) as usize] = (x, y);
            }
        }
        for w in pos.windows(2) {
            let dx = w[0].0.abs_diff(w[1].0);
            let dy = w[0].1.abs_diff(w[1].1);
            assert_eq!(dx + dy, 1, "curve jumps from {:?} to {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn generators_deterministic() {
        assert_eq!(circuit_like(50, 3, 0.1, 2), circuit_like(50, 3, 0.1, 2));
        assert_eq!(
            mesh_laplacian_2d(5, 5, MeshOrdering::Hilbert, 2),
            mesh_laplacian_2d(5, 5, MeshOrdering::Hilbert, 2)
        );
    }
}
