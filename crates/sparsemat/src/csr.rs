//! Compressed sparse row matrices.
//!
//! The canonical storage format of the library: sorted column indices in
//! every row, explicit zeros allowed (pattern and values are separate
//! concerns — communication plans depend on the pattern).
//!
//! ## Kernel layer
//!
//! Column indices are stored as `u32` (validated at construction — every
//! column fits, every row is sorted/unique/in-range), halving index
//! bandwidth against the former `usize` storage. On top of the indexed
//! representation, construction detects **runs** of consecutive columns
//! and, when the average run is long enough ([`SEG_MIN_AVG_RUN`]), keeps a
//! run-length encoding (`seg_*` arrays). The segment kernel turns the
//! per-element gather `x[col[p]]` into contiguous slice dot-products with
//! no index traffic at all — the big win on the banded matrices that
//! dominate the paper's suite.
//!
//! **Accumulation-order contract:** every kernel — indexed, unrolled,
//! segmented, fused — accumulates each row strictly left-to-right through
//! a single accumulator chain, so results are *bitwise identical* to the
//! reference scalar loop ([`Csr::spmv_reference`]). Optimizations here may
//! re-shape memory traffic, never floating-point association.

use crate::coo::Coo;

/// Minimum average run length (nnz / runs) for construction to keep the
/// run-length encoding. Below this the per-run slice overhead outweighs
/// the saved index traffic and the indexed kernel is used instead.
pub const SEG_MIN_AVG_RUN: usize = 4;

/// A sparse matrix in CSR format.
#[derive(Clone, Debug, PartialEq)]
pub struct Csr {
    n_rows: usize,
    n_cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    vals: Vec<f64>,
    /// Run-length encoding of `col_idx` (empty when not profitable):
    /// `seg_ptr[r]..seg_ptr[r+1]` indexes the runs of row `r`; run `s`
    /// covers columns `seg_col[s] .. seg_col[s] + seg_len[s]`.
    seg_ptr: Vec<u32>,
    seg_col: Vec<u32>,
    seg_len: Vec<u32>,
}

impl Csr {
    /// Assemble from raw parts, validating the invariants.
    ///
    /// Every invariant is checked in **all** build profiles: `row_ptr`
    /// monotone and spanning `col_idx`, and each row's columns sorted,
    /// unique, and `< n_cols`. The compact-index kernels depend on these
    /// (an out-of-range column would read past `x`; an unsorted row would
    /// break the run-length encoding), so a release build must reject bad
    /// input at the construction site, not corrupt results later.
    pub fn from_parts(
        n_rows: usize,
        n_cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        vals: Vec<f64>,
    ) -> Self {
        assert_eq!(row_ptr.len(), n_rows + 1, "row_ptr length");
        assert_eq!(col_idx.len(), vals.len(), "col/val length mismatch");
        assert_eq!(*row_ptr.last().unwrap(), col_idx.len(), "row_ptr end");
        assert!(row_ptr.windows(2).all(|w| w[0] <= w[1]), "row_ptr monotone");
        assert!(
            n_cols <= u32::MAX as usize,
            "column count exceeds u32 index range"
        );
        for r in 0..n_rows {
            let s = &col_idx[row_ptr[r]..row_ptr[r + 1]];
            assert!(
                s.windows(2).all(|w| w[0] < w[1]) && s.last().is_none_or(|&c| c < n_cols),
                "row {r}: columns must be sorted, unique, in range"
            );
        }
        let col_idx: Vec<u32> = col_idx.into_iter().map(|c| c as u32).collect();
        let mut m = Csr {
            n_rows,
            n_cols,
            row_ptr,
            col_idx,
            vals,
            seg_ptr: Vec::new(),
            seg_col: Vec::new(),
            seg_len: Vec::new(),
        };
        m.build_segments();
        m
    }

    /// Detect runs of consecutive columns and keep the run-length encoding
    /// when the average run is at least [`SEG_MIN_AVG_RUN`].
    fn build_segments(&mut self) {
        let nnz = self.col_idx.len();
        if nnz == 0 || nnz >= u32::MAX as usize {
            return;
        }
        // First pass: count runs to decide profitability without building.
        let mut runs = 0usize;
        for r in 0..self.n_rows {
            let row = &self.col_idx[self.row_ptr[r]..self.row_ptr[r + 1]];
            let mut prev = u32::MAX;
            for &c in row {
                if prev == u32::MAX || c != prev + 1 {
                    runs += 1;
                }
                prev = c;
            }
        }
        if runs == 0 || nnz / runs < SEG_MIN_AVG_RUN {
            return;
        }
        let mut seg_ptr = Vec::with_capacity(self.n_rows + 1);
        let mut seg_col = Vec::with_capacity(runs);
        let mut seg_len = Vec::with_capacity(runs);
        seg_ptr.push(0u32);
        for r in 0..self.n_rows {
            let row = &self.col_idx[self.row_ptr[r]..self.row_ptr[r + 1]];
            let mut i = 0usize;
            while i < row.len() {
                let start = row[i];
                let mut len = 1u32;
                while i + (len as usize) < row.len() && row[i + len as usize] == start + len {
                    len += 1;
                }
                seg_col.push(start);
                seg_len.push(len);
                i += len as usize;
            }
            seg_ptr.push(seg_col.len() as u32);
        }
        self.seg_ptr = seg_ptr;
        self.seg_col = seg_col;
        self.seg_len = seg_len;
    }

    /// True if the run-length-encoded kernel is active for this matrix.
    pub fn uses_segments(&self) -> bool {
        !self.seg_ptr.is_empty()
    }

    /// `n × n` identity.
    pub fn identity(n: usize) -> Self {
        Csr::from_parts(n, n, (0..=n).collect(), (0..n).collect(), vec![1.0; n])
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// The row pointer array (`n_rows + 1` entries).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// All column indices, row-major (compact `u32` storage).
    pub fn col_idx(&self) -> &[u32] {
        &self.col_idx
    }

    /// All values, row-major.
    pub fn vals(&self) -> &[f64] {
        &self.vals
    }

    /// Mutable values (pattern-preserving updates).
    pub fn vals_mut(&mut self) -> &mut [f64] {
        &mut self.vals
    }

    /// Column indices and values of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> (&[u32], &[f64]) {
        let span = self.row_ptr[r]..self.row_ptr[r + 1];
        (&self.col_idx[span.clone()], &self.vals[span])
    }

    /// Value at `(r, c)`, zero if not stored.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        let (cols, vals) = self.row(r);
        match cols.binary_search(&(c as u32)) {
            Ok(k) => vals[k],
            Err(_) => 0.0,
        }
    }

    /// Dot-product of row `r` with `x`, left-to-right. Picks the
    /// segment kernel when the encoding is active.
    #[inline(always)]
    fn row_dot(&self, r: usize, x: &[f64]) -> f64 {
        if self.seg_ptr.is_empty() {
            let span = self.row_ptr[r]..self.row_ptr[r + 1];
            dot_indexed(&self.col_idx[span.clone()], &self.vals[span], x)
        } else {
            let mut acc = 0.0;
            let mut base = self.row_ptr[r];
            for s in self.seg_ptr[r] as usize..self.seg_ptr[r + 1] as usize {
                let c0 = self.seg_col[s] as usize;
                let l = self.seg_len[s] as usize;
                acc = dot_run(acc, &self.vals[base..base + l], &x[c0..c0 + l]);
                base += l;
            }
            acc
        }
    }

    /// `y ← A·x`.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n_cols, "spmv x length");
        assert_eq!(y.len(), self.n_rows, "spmv y length");
        for (r, yr) in y.iter_mut().enumerate() {
            *yr = self.row_dot(r, x);
        }
    }

    /// `y ← y + A·x`.
    pub fn spmv_add(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n_cols);
        assert_eq!(y.len(), self.n_rows);
        for (r, yr) in y.iter_mut().enumerate() {
            *yr += self.row_dot(r, x);
        }
    }

    /// Fused `y ← self·x + off·xo` over matching row sets — the one-pass
    /// local product of the distributed SpMV (`self` = diagonal block,
    /// `off` = off-diagonal block, `xo` = ghost values). Bitwise identical
    /// to `self.spmv(x, y); off.spmv_add(xo, y)`: each row forms its two
    /// partial sums left-to-right and adds them once at the end, exactly
    /// the association of the two-pass form — but `y` is written once and
    /// both operands stream through the cache together.
    pub fn spmv_fused(&self, off: &Csr, x: &[f64], xo: &[f64], y: &mut [f64]) {
        assert_eq!(off.n_rows, self.n_rows, "fused spmv row mismatch");
        assert_eq!(x.len(), self.n_cols, "fused spmv x length");
        assert_eq!(xo.len(), off.n_cols, "fused spmv xo length");
        assert_eq!(y.len(), self.n_rows, "fused spmv y length");
        for (r, yr) in y.iter_mut().enumerate() {
            *yr = self.row_dot(r, x) + off.row_dot(r, xo);
        }
    }

    /// Reference scalar SpMV: the naive per-element gather loop every
    /// optimized kernel is pinned against, bit for bit (see the
    /// accumulation-order contract in the module docs). Kept for the
    /// proptest oracle and the kernel microbench baseline.
    #[doc(hidden)]
    pub fn spmv_reference(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n_cols);
        assert_eq!(y.len(), self.n_rows);
        for r in 0..self.n_rows {
            let (cols, vals) = self.row(r);
            let mut acc = 0.0;
            for (c, v) in cols.iter().zip(vals) {
                acc += v * x[*c as usize];
            }
            y[r] = acc;
        }
    }

    /// Allocate-and-return variant of [`Csr::spmv`] — a convenience for
    /// tests and setup code; hot paths use the in-place kernels.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.n_rows];
        self.spmv(x, &mut y);
        y
    }

    /// Flop count of one SpMV (2 per stored entry).
    pub fn spmv_flops(&self) -> usize {
        2 * self.nnz()
    }

    /// The main diagonal (zero where not stored).
    pub fn diag(&self) -> Vec<f64> {
        (0..self.n_rows.min(self.n_cols))
            .map(|i| self.get(i, i))
            .collect()
    }

    /// Transpose.
    pub fn transpose(&self) -> Csr {
        let mut counts = vec![0usize; self.n_cols + 1];
        for &c in &self.col_idx {
            counts[c as usize + 1] += 1;
        }
        for i in 0..self.n_cols {
            counts[i + 1] += counts[i];
        }
        let mut row_ptr = counts.clone();
        let mut col_idx = vec![0usize; self.nnz()];
        let mut vals = vec![0.0; self.nnz()];
        let mut next = counts;
        for r in 0..self.n_rows {
            let (cols, vs) = self.row(r);
            for (c, v) in cols.iter().zip(vs) {
                let slot = next[*c as usize];
                col_idx[slot] = r;
                vals[slot] = *v;
                next[*c as usize] += 1;
            }
        }
        // Rows of the transpose are built in increasing source-row order,
        // so columns are already sorted.
        row_ptr.truncate(self.n_cols + 1);
        Csr::from_parts(self.n_cols, self.n_rows, row_ptr, col_idx, vals)
    }

    /// Max absolute asymmetry `|A - Aᵀ|∞`; 0 for structurally and
    /// numerically symmetric matrices.
    pub fn asymmetry(&self) -> f64 {
        let t = self.transpose();
        let mut worst = 0.0f64;
        for r in 0..self.n_rows {
            let (c1, v1) = self.row(r);
            let (c2, v2) = t.row(r);
            // Merge the two sorted rows.
            let (mut i, mut j) = (0, 0);
            while i < c1.len() || j < c2.len() {
                if j >= c2.len() || (i < c1.len() && c1[i] < c2[j]) {
                    worst = worst.max(v1[i].abs());
                    i += 1;
                } else if i >= c1.len() || c2[j] < c1[i] {
                    worst = worst.max(v2[j].abs());
                    j += 1;
                } else {
                    worst = worst.max((v1[i] - v2[j]).abs());
                    i += 1;
                    j += 1;
                }
            }
        }
        worst
    }

    /// True if `‖A - Aᵀ‖∞ ≤ tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        self.n_rows == self.n_cols && self.asymmetry() <= tol
    }

    /// Symmetric permutation `P A Pᵀ`: entry `(i, j)` moves to
    /// `(perm[i], perm[j])` (i.e. `perm` maps old index → new index).
    pub fn permute_sym(&self, perm: &[usize]) -> Csr {
        assert_eq!(self.n_rows, self.n_cols, "symmetric permute needs square");
        assert_eq!(perm.len(), self.n_rows);
        let mut inv = vec![usize::MAX; perm.len()];
        for (old, &new) in perm.iter().enumerate() {
            assert!(inv[new] == usize::MAX, "perm is not a bijection");
            inv[new] = old;
        }
        let mut coo = Coo::with_capacity(self.n_rows, self.n_cols, self.nnz());
        for new_r in 0..self.n_rows {
            let old_r = inv[new_r];
            let (cols, vals) = self.row(old_r);
            for (c, v) in cols.iter().zip(vals) {
                coo.push(new_r, perm[*c as usize], *v);
            }
        }
        coo.to_csr()
    }

    /// Extract the submatrix with the given (sorted, unique, global) rows
    /// and columns; indices are renumbered to `0..rows.len()` /
    /// `0..cols.len()`. Used for `A_{If,If}` and `P_{If,If}` in the
    /// reconstruction (paper Alg. 2, lines 6 and 8).
    pub fn extract(&self, rows: &[usize], cols: &[usize]) -> Csr {
        debug_assert!(rows.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(cols.windows(2).all(|w| w[0] < w[1]));
        let mut col_map = vec![usize::MAX; self.n_cols];
        for (new, &old) in cols.iter().enumerate() {
            col_map[old] = new;
        }
        let mut row_ptr = Vec::with_capacity(rows.len() + 1);
        let mut col_idx = Vec::new();
        let mut vals = Vec::new();
        row_ptr.push(0);
        for &r in rows {
            let (cs, vs) = self.row(r);
            for (c, v) in cs.iter().zip(vs) {
                let nc = col_map[*c as usize];
                if nc != usize::MAX {
                    col_idx.push(nc);
                    vals.push(*v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        Csr::from_parts(rows.len(), cols.len(), row_ptr, col_idx, vals)
    }

    /// Extract rows (renumbered `0..rows.len()`) keeping **all** columns.
    pub fn extract_rows(&self, rows: &[usize]) -> Csr {
        let mut row_ptr = Vec::with_capacity(rows.len() + 1);
        let mut col_idx = Vec::new();
        let mut vals = Vec::new();
        row_ptr.push(0);
        for &r in rows {
            let (cs, vs) = self.row(r);
            col_idx.extend(cs.iter().map(|&c| c as usize));
            vals.extend_from_slice(vs);
            row_ptr.push(col_idx.len());
        }
        Csr::from_parts(rows.len(), self.n_cols, row_ptr, col_idx, vals)
    }

    /// Bandwidth: `max |i - j|` over stored entries.
    pub fn bandwidth(&self) -> usize {
        let mut bw = 0usize;
        for r in 0..self.n_rows {
            let (cols, _) = self.row(r);
            for &c in cols {
                bw = bw.max(r.abs_diff(c as usize));
            }
        }
        bw
    }

    /// Dense representation (test oracle; panics on large matrices).
    pub fn to_dense(&self) -> crate::dense::Dense {
        assert!(
            self.n_rows * self.n_cols <= 16_000_000,
            "to_dense on a large matrix"
        );
        let mut d = crate::dense::Dense::zeros(self.n_rows, self.n_cols);
        for r in 0..self.n_rows {
            let (cols, vals) = self.row(r);
            for (c, v) in cols.iter().zip(vals) {
                d[(r, *c as usize)] = *v;
            }
        }
        d
    }
}

/// Indexed row dot, 4-wide unrolled through a **single** accumulator chain
/// (multiple accumulators would change the summation order and break the
/// bitwise contract; the unroll only amortizes loop control and lets the
/// four gathers issue together).
#[inline(always)]
fn dot_indexed(cols: &[u32], vals: &[f64], x: &[f64]) -> f64 {
    let mut acc = 0.0;
    let mut cc = cols.chunks_exact(4);
    let mut vv = vals.chunks_exact(4);
    for (c4, v4) in (&mut cc).zip(&mut vv) {
        acc += v4[0] * x[c4[0] as usize];
        acc += v4[1] * x[c4[1] as usize];
        acc += v4[2] * x[c4[2] as usize];
        acc += v4[3] * x[c4[3] as usize];
    }
    for (c, v) in cc.remainder().iter().zip(vv.remainder()) {
        acc += v * x[*c as usize];
    }
    acc
}

/// Contiguous-run dot: both operands are plain slices (no index traffic),
/// accumulated left-to-right into the running `acc`.
#[inline(always)]
fn dot_run(acc: f64, vals: &[f64], xs: &[f64]) -> f64 {
    let mut acc = acc;
    let mut vv = vals.chunks_exact(4);
    let mut xx = xs.chunks_exact(4);
    for (v4, x4) in (&mut vv).zip(&mut xx) {
        acc += v4[0] * x4[0];
        acc += v4[1] * x4[1];
        acc += v4[2] * x4[2];
        acc += v4[3] * x4[3];
    }
    for (v, xv) in vv.remainder().iter().zip(xx.remainder()) {
        acc += v * xv;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        // [ 2 -1  0 ]
        // [-1  2 -1 ]
        // [ 0 -1  2 ]
        let mut c = Coo::new(3, 3);
        for i in 0..3 {
            c.push(i, i, 2.0);
        }
        c.push_sym(0, 1, -1.0);
        c.push_sym(1, 2, -1.0);
        c.to_csr()
    }

    #[test]
    fn spmv_tridiag() {
        let a = sample();
        let y = a.mul_vec(&[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![0.0, 0.0, 4.0]);
    }

    #[test]
    fn spmv_add_accumulates() {
        let a = sample();
        let mut y = vec![1.0; 3];
        a.spmv_add(&[1.0, 2.0, 3.0], &mut y);
        assert_eq!(y, vec![1.0, 1.0, 5.0]);
    }

    #[test]
    fn spmv_matches_reference_bitwise() {
        let a = crate::gen::poisson2d(13, 11);
        let x: Vec<f64> = (0..a.n_cols()).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut y_ref = vec![0.0; a.n_rows()];
        let mut y = vec![0.0; a.n_rows()];
        a.spmv_reference(&x, &mut y_ref);
        a.spmv(&x, &mut y);
        for (o, n) in y_ref.iter().zip(&y) {
            assert_eq!(o.to_bits(), n.to_bits());
        }
    }

    #[test]
    fn segment_encoding_on_banded_matrix() {
        // A dense band of half-width 6: long runs, so the RLE kernel
        // must engage and agree with the reference bit for bit.
        let n = 40;
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            for j in i.saturating_sub(6)..(i + 7).min(n) {
                let v = if i == j {
                    20.0
                } else {
                    -1.0 / (1.0 + j as f64)
                };
                coo.push(i, j, v);
            }
        }
        let a = coo.to_csr();
        assert!(a.uses_segments());
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.61).cos()).collect();
        let mut y_ref = vec![0.0; n];
        let mut y = vec![0.0; n];
        a.spmv_reference(&x, &mut y_ref);
        a.spmv(&x, &mut y);
        for (o, s) in y_ref.iter().zip(&y) {
            assert_eq!(o.to_bits(), s.to_bits());
        }
    }

    #[test]
    fn fused_matches_two_pass_bitwise() {
        // Split poisson2d rows into a left and right half-block and check
        // the fused product against spmv-then-spmv_add.
        let a = crate::gen::poisson2d(8, 9);
        let n = a.n_rows();
        let split = 30;
        let left: Vec<usize> = (0..split).collect();
        let right: Vec<usize> = (split..n).collect();
        let all: Vec<usize> = (0..n).collect();
        let d = a.extract(&all, &left);
        let o = a.extract(&all, &right);
        let xl: Vec<f64> = (0..split).map(|i| (i as f64 * 0.7).sin()).collect();
        let xr: Vec<f64> = (split..n).map(|i| (i as f64 * 0.3).cos()).collect();
        let mut y2 = vec![0.0; n];
        d.spmv(&xl, &mut y2);
        o.spmv_add(&xr, &mut y2);
        let mut y1 = vec![0.0; n];
        d.spmv_fused(&o, &xl, &xr, &mut y1);
        for (a2, a1) in y2.iter().zip(&y1) {
            assert_eq!(a2.to_bits(), a1.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "sorted, unique, in range")]
    fn from_parts_rejects_unsorted_columns_in_release_too() {
        // This guard is a hard assert in every profile: the compact
        // kernels depend on it.
        let _ = Csr::from_parts(1, 3, vec![0, 2], vec![2, 1], vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "sorted, unique, in range")]
    fn from_parts_rejects_out_of_range_column() {
        let _ = Csr::from_parts(1, 2, vec![0, 1], vec![5], vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "row_ptr monotone")]
    fn from_parts_rejects_nonmonotone_row_ptr() {
        let _ = Csr::from_parts(2, 2, vec![0, 2, 1], vec![0], vec![1.0]);
    }

    #[test]
    fn transpose_involution() {
        let mut c = Coo::new(3, 4);
        c.push(0, 3, 1.0);
        c.push(2, 1, 5.0);
        c.push(1, 0, -2.0);
        let a = c.to_csr();
        let t = a.transpose();
        assert_eq!(t.n_rows(), 4);
        assert_eq!(t.get(3, 0), 1.0);
        assert_eq!(t.get(1, 2), 5.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn symmetry_check() {
        assert!(sample().is_symmetric(0.0));
        let mut c = Coo::new(2, 2);
        c.push(0, 1, 1.0);
        c.push(1, 0, 1.0 + 1e-3);
        let a = c.to_csr();
        assert!(!a.is_symmetric(1e-6));
        assert!(a.is_symmetric(1e-2));
    }

    #[test]
    fn asymmetry_counts_missing_mirror() {
        let mut c = Coo::new(2, 2);
        c.push(0, 1, 3.0); // no (1,0) entry at all
        let a = c.to_csr();
        assert_eq!(a.asymmetry(), 3.0);
    }

    #[test]
    fn permute_sym_reverses() {
        let a = sample();
        let perm = vec![2, 1, 0];
        let p = a.permute_sym(&perm);
        // Tridiagonal structure is preserved under reversal.
        assert_eq!(p.get(0, 0), 2.0);
        assert_eq!(p.get(0, 1), -1.0);
        assert_eq!(p.get(0, 2), 0.0);
        assert!(p.is_symmetric(0.0));
        // Round-trip back.
        assert_eq!(p.permute_sym(&perm), a);
    }

    #[test]
    fn extract_submatrix() {
        let a = sample();
        let s = a.extract(&[0, 2], &[0, 2]);
        assert_eq!(s.n_rows(), 2);
        assert_eq!(s.get(0, 0), 2.0);
        assert_eq!(s.get(0, 1), 0.0);
        assert_eq!(s.get(1, 1), 2.0);
        let off = a.extract(&[0, 2], &[1]);
        assert_eq!(off.get(0, 0), -1.0);
        assert_eq!(off.get(1, 0), -1.0);
    }

    #[test]
    fn extract_rows_keeps_columns() {
        let a = sample();
        let s = a.extract_rows(&[1]);
        assert_eq!(s.n_rows(), 1);
        assert_eq!(s.n_cols(), 3);
        assert_eq!(s.row(0), (&[0u32, 1, 2][..], &[-1.0, 2.0, -1.0][..]));
    }

    #[test]
    fn diag_and_bandwidth() {
        let a = sample();
        assert_eq!(a.diag(), vec![2.0, 2.0, 2.0]);
        assert_eq!(a.bandwidth(), 1);
        assert_eq!(Csr::identity(5).bandwidth(), 0);
    }

    #[test]
    fn get_missing_is_zero() {
        let a = sample();
        assert_eq!(a.get(0, 2), 0.0);
    }
}
