//! Compressed sparse row matrices.
//!
//! The canonical storage format of the library: sorted column indices in
//! every row, explicit zeros allowed (pattern and values are separate
//! concerns — communication plans depend on the pattern).

use crate::coo::Coo;

/// A sparse matrix in CSR format.
#[derive(Clone, Debug, PartialEq)]
pub struct Csr {
    n_rows: usize,
    n_cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    vals: Vec<f64>,
}

impl Csr {
    /// Assemble from raw parts, validating the invariants.
    pub fn from_parts(
        n_rows: usize,
        n_cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        vals: Vec<f64>,
    ) -> Self {
        assert_eq!(row_ptr.len(), n_rows + 1, "row_ptr length");
        assert_eq!(col_idx.len(), vals.len(), "col/val length mismatch");
        assert_eq!(*row_ptr.last().unwrap(), col_idx.len(), "row_ptr end");
        debug_assert!(row_ptr.windows(2).all(|w| w[0] <= w[1]), "row_ptr monotone");
        debug_assert!(
            (0..n_rows).all(|r| {
                let s = &col_idx[row_ptr[r]..row_ptr[r + 1]];
                s.windows(2).all(|w| w[0] < w[1]) && s.iter().all(|&c| c < n_cols)
            }),
            "columns sorted, unique, in range"
        );
        Csr {
            n_rows,
            n_cols,
            row_ptr,
            col_idx,
            vals,
        }
    }

    /// `n × n` identity.
    pub fn identity(n: usize) -> Self {
        Csr::from_parts(n, n, (0..=n).collect(), (0..n).collect(), vec![1.0; n])
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// The row pointer array (`n_rows + 1` entries).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// All column indices, row-major.
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// All values, row-major.
    pub fn vals(&self) -> &[f64] {
        &self.vals
    }

    /// Mutable values (pattern-preserving updates).
    pub fn vals_mut(&mut self) -> &mut [f64] {
        &mut self.vals
    }

    /// Column indices and values of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> (&[usize], &[f64]) {
        let span = self.row_ptr[r]..self.row_ptr[r + 1];
        (&self.col_idx[span.clone()], &self.vals[span])
    }

    /// Value at `(r, c)`, zero if not stored.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        let (cols, vals) = self.row(r);
        match cols.binary_search(&c) {
            Ok(k) => vals[k],
            Err(_) => 0.0,
        }
    }

    /// `y ← A·x`.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n_cols, "spmv x length");
        assert_eq!(y.len(), self.n_rows, "spmv y length");
        for r in 0..self.n_rows {
            let (cols, vals) = self.row(r);
            let mut acc = 0.0;
            for (c, v) in cols.iter().zip(vals) {
                acc += v * x[*c];
            }
            y[r] = acc;
        }
    }

    /// `y ← y + A·x`.
    pub fn spmv_add(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n_cols);
        assert_eq!(y.len(), self.n_rows);
        for r in 0..self.n_rows {
            let (cols, vals) = self.row(r);
            let mut acc = 0.0;
            for (c, v) in cols.iter().zip(vals) {
                acc += v * x[*c];
            }
            y[r] += acc;
        }
    }

    /// Allocate-and-return variant of [`Csr::spmv`].
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.n_rows];
        self.spmv(x, &mut y);
        y
    }

    /// Flop count of one SpMV (2 per stored entry).
    pub fn spmv_flops(&self) -> usize {
        2 * self.nnz()
    }

    /// The main diagonal (zero where not stored).
    pub fn diag(&self) -> Vec<f64> {
        (0..self.n_rows.min(self.n_cols))
            .map(|i| self.get(i, i))
            .collect()
    }

    /// Transpose.
    pub fn transpose(&self) -> Csr {
        let mut counts = vec![0usize; self.n_cols + 1];
        for &c in &self.col_idx {
            counts[c + 1] += 1;
        }
        for i in 0..self.n_cols {
            counts[i + 1] += counts[i];
        }
        let mut row_ptr = counts.clone();
        let mut col_idx = vec![0usize; self.nnz()];
        let mut vals = vec![0.0; self.nnz()];
        let mut next = counts;
        for r in 0..self.n_rows {
            let (cols, vs) = self.row(r);
            for (c, v) in cols.iter().zip(vs) {
                let slot = next[*c];
                col_idx[slot] = r;
                vals[slot] = *v;
                next[*c] += 1;
            }
        }
        // Rows of the transpose are built in increasing source-row order,
        // so columns are already sorted.
        row_ptr.truncate(self.n_cols + 1);
        Csr::from_parts(self.n_cols, self.n_rows, row_ptr, col_idx, vals)
    }

    /// Max absolute asymmetry `|A - Aᵀ|∞`; 0 for structurally and
    /// numerically symmetric matrices.
    pub fn asymmetry(&self) -> f64 {
        let t = self.transpose();
        let mut worst = 0.0f64;
        for r in 0..self.n_rows {
            let (c1, v1) = self.row(r);
            let (c2, v2) = t.row(r);
            // Merge the two sorted rows.
            let (mut i, mut j) = (0, 0);
            while i < c1.len() || j < c2.len() {
                if j >= c2.len() || (i < c1.len() && c1[i] < c2[j]) {
                    worst = worst.max(v1[i].abs());
                    i += 1;
                } else if i >= c1.len() || c2[j] < c1[i] {
                    worst = worst.max(v2[j].abs());
                    j += 1;
                } else {
                    worst = worst.max((v1[i] - v2[j]).abs());
                    i += 1;
                    j += 1;
                }
            }
        }
        worst
    }

    /// True if `‖A - Aᵀ‖∞ ≤ tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        self.n_rows == self.n_cols && self.asymmetry() <= tol
    }

    /// Symmetric permutation `P A Pᵀ`: entry `(i, j)` moves to
    /// `(perm[i], perm[j])` (i.e. `perm` maps old index → new index).
    pub fn permute_sym(&self, perm: &[usize]) -> Csr {
        assert_eq!(self.n_rows, self.n_cols, "symmetric permute needs square");
        assert_eq!(perm.len(), self.n_rows);
        let mut inv = vec![usize::MAX; perm.len()];
        for (old, &new) in perm.iter().enumerate() {
            assert!(inv[new] == usize::MAX, "perm is not a bijection");
            inv[new] = old;
        }
        let mut coo = Coo::with_capacity(self.n_rows, self.n_cols, self.nnz());
        for new_r in 0..self.n_rows {
            let old_r = inv[new_r];
            let (cols, vals) = self.row(old_r);
            for (c, v) in cols.iter().zip(vals) {
                coo.push(new_r, perm[*c], *v);
            }
        }
        coo.to_csr()
    }

    /// Extract the submatrix with the given (sorted, unique, global) rows
    /// and columns; indices are renumbered to `0..rows.len()` /
    /// `0..cols.len()`. Used for `A_{If,If}` and `P_{If,If}` in the
    /// reconstruction (paper Alg. 2, lines 6 and 8).
    pub fn extract(&self, rows: &[usize], cols: &[usize]) -> Csr {
        debug_assert!(rows.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(cols.windows(2).all(|w| w[0] < w[1]));
        let mut col_map = vec![usize::MAX; self.n_cols];
        for (new, &old) in cols.iter().enumerate() {
            col_map[old] = new;
        }
        let mut row_ptr = Vec::with_capacity(rows.len() + 1);
        let mut col_idx = Vec::new();
        let mut vals = Vec::new();
        row_ptr.push(0);
        for &r in rows {
            let (cs, vs) = self.row(r);
            for (c, v) in cs.iter().zip(vs) {
                let nc = col_map[*c];
                if nc != usize::MAX {
                    col_idx.push(nc);
                    vals.push(*v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        Csr::from_parts(rows.len(), cols.len(), row_ptr, col_idx, vals)
    }

    /// Extract rows (renumbered `0..rows.len()`) keeping **all** columns.
    pub fn extract_rows(&self, rows: &[usize]) -> Csr {
        let mut row_ptr = Vec::with_capacity(rows.len() + 1);
        let mut col_idx = Vec::new();
        let mut vals = Vec::new();
        row_ptr.push(0);
        for &r in rows {
            let (cs, vs) = self.row(r);
            col_idx.extend_from_slice(cs);
            vals.extend_from_slice(vs);
            row_ptr.push(col_idx.len());
        }
        Csr::from_parts(rows.len(), self.n_cols, row_ptr, col_idx, vals)
    }

    /// Bandwidth: `max |i - j|` over stored entries.
    pub fn bandwidth(&self) -> usize {
        let mut bw = 0usize;
        for r in 0..self.n_rows {
            let (cols, _) = self.row(r);
            for &c in cols {
                bw = bw.max(r.abs_diff(c));
            }
        }
        bw
    }

    /// Dense representation (test oracle; panics on large matrices).
    pub fn to_dense(&self) -> crate::dense::Dense {
        assert!(
            self.n_rows * self.n_cols <= 16_000_000,
            "to_dense on a large matrix"
        );
        let mut d = crate::dense::Dense::zeros(self.n_rows, self.n_cols);
        for r in 0..self.n_rows {
            let (cols, vals) = self.row(r);
            for (c, v) in cols.iter().zip(vals) {
                d[(r, *c)] = *v;
            }
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        // [ 2 -1  0 ]
        // [-1  2 -1 ]
        // [ 0 -1  2 ]
        let mut c = Coo::new(3, 3);
        for i in 0..3 {
            c.push(i, i, 2.0);
        }
        c.push_sym(0, 1, -1.0);
        c.push_sym(1, 2, -1.0);
        c.to_csr()
    }

    #[test]
    fn spmv_tridiag() {
        let a = sample();
        let y = a.mul_vec(&[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![0.0, 0.0, 4.0]);
    }

    #[test]
    fn spmv_add_accumulates() {
        let a = sample();
        let mut y = vec![1.0; 3];
        a.spmv_add(&[1.0, 2.0, 3.0], &mut y);
        assert_eq!(y, vec![1.0, 1.0, 5.0]);
    }

    #[test]
    fn transpose_involution() {
        let mut c = Coo::new(3, 4);
        c.push(0, 3, 1.0);
        c.push(2, 1, 5.0);
        c.push(1, 0, -2.0);
        let a = c.to_csr();
        let t = a.transpose();
        assert_eq!(t.n_rows(), 4);
        assert_eq!(t.get(3, 0), 1.0);
        assert_eq!(t.get(1, 2), 5.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn symmetry_check() {
        assert!(sample().is_symmetric(0.0));
        let mut c = Coo::new(2, 2);
        c.push(0, 1, 1.0);
        c.push(1, 0, 1.0 + 1e-3);
        let a = c.to_csr();
        assert!(!a.is_symmetric(1e-6));
        assert!(a.is_symmetric(1e-2));
    }

    #[test]
    fn asymmetry_counts_missing_mirror() {
        let mut c = Coo::new(2, 2);
        c.push(0, 1, 3.0); // no (1,0) entry at all
        let a = c.to_csr();
        assert_eq!(a.asymmetry(), 3.0);
    }

    #[test]
    fn permute_sym_reverses() {
        let a = sample();
        let perm = vec![2, 1, 0];
        let p = a.permute_sym(&perm);
        // Tridiagonal structure is preserved under reversal.
        assert_eq!(p.get(0, 0), 2.0);
        assert_eq!(p.get(0, 1), -1.0);
        assert_eq!(p.get(0, 2), 0.0);
        assert!(p.is_symmetric(0.0));
        // Round-trip back.
        assert_eq!(p.permute_sym(&perm), a);
    }

    #[test]
    fn extract_submatrix() {
        let a = sample();
        let s = a.extract(&[0, 2], &[0, 2]);
        assert_eq!(s.n_rows(), 2);
        assert_eq!(s.get(0, 0), 2.0);
        assert_eq!(s.get(0, 1), 0.0);
        assert_eq!(s.get(1, 1), 2.0);
        let off = a.extract(&[0, 2], &[1]);
        assert_eq!(off.get(0, 0), -1.0);
        assert_eq!(off.get(1, 0), -1.0);
    }

    #[test]
    fn extract_rows_keeps_columns() {
        let a = sample();
        let s = a.extract_rows(&[1]);
        assert_eq!(s.n_rows(), 1);
        assert_eq!(s.n_cols(), 3);
        assert_eq!(s.row(0), (&[0usize, 1, 2][..], &[-1.0, 2.0, -1.0][..]));
    }

    #[test]
    fn diag_and_bandwidth() {
        let a = sample();
        assert_eq!(a.diag(), vec![2.0, 2.0, 2.0]);
        assert_eq!(a.bandwidth(), 1);
        assert_eq!(Csr::identity(5).bandwidth(), 0);
    }

    #[test]
    fn get_missing_is_zero() {
        let a = sample();
        assert_eq!(a.get(0, 2), 0.0);
    }
}
