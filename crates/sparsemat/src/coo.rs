//! Coordinate-format builder for sparse matrices.
//!
//! Generators and the Matrix Market reader assemble entries in arbitrary
//! order (with duplicates summed, as in FEM assembly); [`Coo::to_csr`]
//! produces the canonical compressed row form used everywhere else.

use crate::csr::Csr;

/// A sparse matrix under construction: unordered `(row, col, value)`
/// triplets; duplicates are summed on conversion.
#[derive(Clone, Debug, Default)]
pub struct Coo {
    n_rows: usize,
    n_cols: usize,
    entries: Vec<(u32, u32, f64)>,
}

impl Coo {
    /// An empty `n_rows × n_cols` builder.
    pub fn new(n_rows: usize, n_cols: usize) -> Self {
        assert!(n_rows < u32::MAX as usize && n_cols < u32::MAX as usize);
        Coo {
            n_rows,
            n_cols,
            entries: Vec::new(),
        }
    }

    /// Pre-allocate for `nnz` entries.
    pub fn with_capacity(n_rows: usize, n_cols: usize, nnz: usize) -> Self {
        let mut c = Coo::new(n_rows, n_cols);
        c.entries.reserve(nnz);
        c
    }

    /// Add `value` at `(row, col)`; duplicates accumulate.
    #[inline]
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        debug_assert!(row < self.n_rows && col < self.n_cols);
        self.entries.push((row as u32, col as u32, value));
    }

    /// Add `value` at `(row, col)` and `(col, row)` (symmetric assembly).
    #[inline]
    pub fn push_sym(&mut self, row: usize, col: usize, value: f64) {
        self.push(row, col, value);
        if row != col {
            self.push(col, row, value);
        }
    }

    /// Number of raw triplets (before duplicate summing).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no triplets were added.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Matrix dimensions.
    pub fn shape(&self) -> (usize, usize) {
        (self.n_rows, self.n_cols)
    }

    /// Convert to CSR: rows sorted, columns sorted within rows, duplicates
    /// summed, explicit zeros kept (they carry pattern information that the
    /// communication plans depend on).
    pub fn to_csr(&self) -> Csr {
        let nr = self.n_rows;
        // Counting sort by row: O(nnz + n), no comparison sort needed.
        let mut row_counts = vec![0usize; nr + 1];
        for &(r, _, _) in &self.entries {
            row_counts[r as usize + 1] += 1;
        }
        for i in 0..nr {
            row_counts[i + 1] += row_counts[i];
        }
        let mut order: Vec<u32> = vec![0; self.entries.len()];
        {
            let mut next = row_counts.clone();
            for (i, &(r, _, _)) in self.entries.iter().enumerate() {
                let slot = next[r as usize];
                order[slot] = i as u32;
                next[r as usize] += 1;
            }
        }
        let mut row_ptr = Vec::with_capacity(nr + 1);
        let mut col_idx: Vec<usize> = Vec::with_capacity(self.entries.len());
        let mut vals: Vec<f64> = Vec::with_capacity(self.entries.len());
        row_ptr.push(0);
        let mut scratch: Vec<(u32, f64)> = Vec::new();
        for r in 0..nr {
            scratch.clear();
            for &ei in &order[row_counts[r]..row_counts[r + 1]] {
                let (_, c, v) = self.entries[ei as usize];
                scratch.push((c, v));
            }
            scratch.sort_unstable_by_key(|&(c, _)| c);
            // Merge duplicates.
            let mut k = 0;
            while k < scratch.len() {
                let c = scratch[k].0;
                let mut v = scratch[k].1;
                let mut j = k + 1;
                while j < scratch.len() && scratch[j].0 == c {
                    v += scratch[j].1;
                    j += 1;
                }
                col_idx.push(c as usize);
                vals.push(v);
                k = j;
            }
            row_ptr.push(col_idx.len());
        }
        Csr::from_parts(nr, self.n_cols, row_ptr, col_idx, vals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_sorted_csr() {
        let mut c = Coo::new(3, 3);
        c.push(2, 1, 5.0);
        c.push(0, 2, 3.0);
        c.push(0, 0, 1.0);
        let a = c.to_csr();
        assert_eq!(a.nnz(), 3);
        assert_eq!(a.row(0), (&[0u32, 2][..], &[1.0, 3.0][..]));
        assert_eq!(a.row(1), (&[][..], &[][..]));
        assert_eq!(a.row(2), (&[1u32][..], &[5.0][..]));
    }

    #[test]
    fn duplicates_sum() {
        let mut c = Coo::new(2, 2);
        c.push(0, 0, 1.0);
        c.push(0, 0, 2.5);
        c.push(1, 1, -1.0);
        let a = c.to_csr();
        assert_eq!(a.get(0, 0), 3.5);
        assert_eq!(a.get(1, 1), -1.0);
        assert_eq!(a.nnz(), 2);
    }

    #[test]
    fn push_sym_mirrors() {
        let mut c = Coo::new(3, 3);
        c.push_sym(0, 2, 4.0);
        c.push_sym(1, 1, 2.0); // diagonal: added once
        let a = c.to_csr();
        assert_eq!(a.get(0, 2), 4.0);
        assert_eq!(a.get(2, 0), 4.0);
        assert_eq!(a.get(1, 1), 2.0);
        assert_eq!(a.nnz(), 3);
    }

    #[test]
    fn empty_rows_are_fine() {
        let c = Coo::new(4, 4);
        let a = c.to_csr();
        assert_eq!(a.nnz(), 0);
        assert_eq!(a.n_rows(), 4);
    }
}
