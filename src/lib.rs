//! # esr-suite — the ESR-PCG reproduction, in one crate
//!
//! Umbrella over the full stack reproducing Pachajoa et al., *"How to Make
//! the Preconditioned Conjugate Gradient Method Resilient Against Multiple
//! Node Failures"* (ICPP 2019). See the repository's README.md for a tour
//! and DESIGN.md for the architecture.
//!
//! ## Example: survive two simultaneous node failures
//!
//! ```
//! use esr_suite::core::{run_pcg, Problem, SolverConfig};
//! use esr_suite::parcomm::{CostModel, FailureScript};
//!
//! // An SPD system with known solution x = 1.
//! let a = esr_suite::sparsemat::gen::poisson2d(16, 16);
//! let problem = Problem::with_ones_solution(a);
//!
//! // Tolerate up to φ = 2 simultaneous failures; inject ψ = 2 at
//! // iteration 5, contiguous ranks starting at rank 1, on 6 nodes.
//! let script = FailureScript::simultaneous(5, 1, 2, 6);
//! let result = run_pcg(
//!     &problem,
//!     6,
//!     &SolverConfig::resilient(2),
//!     CostModel::default(),
//!     script,
//! )
//! .expect("a supported solver × policy × preconditioner combination");
//!
//! assert!(result.converged);
//! assert_eq!(result.ranks_recovered, 2);
//! let err = result.x.iter().map(|x| (x - 1.0).abs()).fold(0.0, f64::max);
//! assert!(err < 1e-6, "state was reconstructed exactly: {err}");
//! ```

pub use esr_core as core;
pub use krylov;
pub use parcomm;
pub use precond;
pub use sparsemat;
