//! Smoke test for the public re-export surface.
//!
//! The examples and the crate-level doctest reach everything through either
//! the umbrella paths (`esr_suite::core`, `esr_suite::parcomm`, …) or the
//! member crates directly (`esr_core`, `parcomm`, …). This test constructs
//! each entry point through both spellings so a refactor that silently drops
//! a re-export breaks here — a fast unit test — instead of only in
//! `cargo build --examples` or the doctest.

use esr_suite::core::{Problem, SolverConfig};
use esr_suite::parcomm::{CostModel, FailureScript};
use esr_suite::precond::{
    BlockJacobi, BlockSolver, ExplicitPrec, Ic0, Identity, Ilu0, Jacobi, Preconditioner, SparseLdl,
    Ssor,
};
use esr_suite::sparsemat::{gen, BlockPartition};

#[test]
fn umbrella_paths_match_member_crates() {
    // The umbrella modules are the member crates, not parallel copies.
    let via_umbrella = esr_suite::parcomm::CostModel::default();
    let via_member: parcomm::CostModel = via_umbrella;
    let _ = via_member;

    let a = esr_suite::sparsemat::gen::poisson2d(4, 4);
    let b: sparsemat::Csr = a;
    let _ = b;
}

#[test]
fn recovery_policy_reaches_through_umbrella_paths() {
    // The policy axis is public surface: constructible through the
    // umbrella and convertible to the member-crate type.
    let via_umbrella = esr_suite::core::RecoveryPolicy::Spares(3);
    let via_member: esr_core::RecoveryPolicy = via_umbrella;
    assert_eq!(via_member, esr_core::RecoveryPolicy::Spares(3));
    assert_eq!(
        esr_core::RecoveryPolicy::default(),
        esr_core::RecoveryPolicy::Replace
    );
    let cfg = SolverConfig::resilient_with_policy(2, esr_suite::core::RecoveryPolicy::Shrink);
    assert_eq!(
        cfg.resilience.unwrap().policy,
        esr_core::RecoveryPolicy::Shrink
    );
}

#[test]
fn engine_and_config_error_types_reach_through_umbrella_paths() {
    // The resilience engine's public surface after the solver-agnostic
    // refactor: the report/engine types and the typed configuration
    // errors are re-exported (the old per-solver `recovery`/
    // `pipe_recovery` modules are gone).
    let report = esr_suite::core::RecoveryReport {
        total_failed: 2,
        retired_ranks: 1,
        attempts: 1,
        inner_iterations: 40,
        rollback_to: None,
        timeline: esr_suite::core::RecoveryTimeline::default(),
    };
    let via_member: esr_core::RecoveryReport = report;
    assert_eq!(via_member.total_failed, 2);
    assert!(via_member.timeline.segments.is_empty());
    let _engine_marker: Option<esr_suite::core::RecoveryEngine> = None;

    // ConfigError is a std::error::Error with the constraint in Display.
    let err = esr_suite::core::ConfigError::PhiTooLarge { phi: 9, nodes: 4 };
    let as_std: &dyn std::error::Error = &err;
    assert!(as_std.to_string().contains("survivor"));
    assert_eq!(esr_core::SolverKind::PipeCg.name(), "pipelined PCG");

    // And the run_* entry points return it as a typed Result.
    let a = esr_suite::sparsemat::gen::poisson2d(6, 6);
    let problem = Problem::with_ones_solution(a);
    let err = esr_suite::core::run_pcg(
        &problem,
        4,
        &SolverConfig::resilient(9),
        CostModel::default(),
        FailureScript::none(),
    )
    .expect_err("phi = 9 on 4 nodes leaves no survivor");
    assert!(matches!(
        err,
        esr_core::ConfigError::PhiTooLarge { phi: 9, nodes: 4 }
    ));
}

#[test]
fn checkpoint_protection_reaches_through_umbrella_paths() {
    // The protection axis (engine-folded checkpoint/restart) is public
    // surface: CrConfig through both spellings (the old `core::checkpoint`
    // home re-exports the config type), Protection on ResilienceConfig,
    // and the run_checkpoint_restart compatibility entry point.
    let via_umbrella = esr_suite::core::CrConfig::default()
        .with_interval(5)
        .with_copies(2);
    let via_member: esr_core::CrConfig = via_umbrella.clone();
    let via_old_home: esr_core::checkpoint::CrConfig = via_member.clone();
    assert_eq!(via_old_home.interval, 5);
    assert_eq!(via_old_home.copies, 2);

    let res = esr_core::ResilienceConfig::paper(2)
        .with_protection(esr_suite::core::Protection::Checkpoint(via_member));
    assert!(res.cr().is_some());
    assert!(!res.is_esr());
    assert!(esr_core::ResilienceConfig::paper(2).is_esr());

    // The compatibility shim still runs a full C/R-protected solve.
    let a = esr_suite::sparsemat::gen::poisson2d(8, 8);
    let problem = Problem::with_ones_solution(a);
    let result = esr_suite::core::run_checkpoint_restart(
        &problem,
        4,
        &SolverConfig::resilient(1),
        &via_old_home,
        CostModel::default(),
        FailureScript::simultaneous(6, 1, 1, 4),
    )
    .unwrap();
    assert!(result.converged);
    assert_eq!(result.recoveries, 1);
    let err = result.x.iter().map(|x| (x - 1.0).abs()).fold(0.0, f64::max);
    assert!(err < 1e-6, "rollback restart not convergent: {err}");
}

#[test]
fn failure_script_builders_validate_at_construction() {
    // The size-aware builders are public surface; bounds are checked at
    // the construction site, not later inside Cluster::run.
    let script = FailureScript::at_iterations(8, &[(3, 1), (3, 2), (9, 0)]);
    assert_eq!(script.total_failed_ranks(), 3);
    assert_eq!(script.validated_nodes(), Some(8));
    let bad = std::panic::catch_unwind(|| FailureScript::at_iterations(4, &[(3, 9)]));
    assert!(bad.is_err(), "out-of-bounds rank must fail at construction");
}

#[test]
fn failure_script_and_cost_model_construct() {
    // The exact calls the doctest and examples/overlapping_failures.rs use.
    let script = FailureScript::simultaneous(5, 1, 2, 6);
    let _ = script;
    let none = FailureScript::none();
    let _ = none;
    let cost = CostModel::default();
    assert!(cost.msg_cost(10) > 0.0);
}

#[test]
fn block_partition_constructs() {
    let part = BlockPartition::new(100, 7);
    let covered: usize = (0..7).map(|k| part.len_of(k)).sum();
    assert_eq!(covered, 100);
}

#[test]
fn every_precond_variant_constructs_through_public_paths() {
    let a = gen::banded_spd(24, 3, 0.7, 42);

    let variants: Vec<(&str, Box<dyn Preconditioner>)> = vec![
        ("identity", Box::new(Identity::new(a.n_rows()))),
        ("jacobi", Box::new(Jacobi::new(&a).unwrap())),
        (
            "block_jacobi",
            Box::new(BlockJacobi::with_blocks(&a, 4, BlockSolver::ExactLdl).unwrap()),
        ),
        ("ldl", Box::new(SparseLdl::new(&a).unwrap())),
        ("ilu0", Box::new(Ilu0::new(&a).unwrap())),
        ("ic0", Box::new(Ic0::new(&a).unwrap())),
        ("ssor", Box::new(Ssor::new(&a, 1.2).unwrap())),
        ("explicit", Box::new(ExplicitPrec::jacobi_of(&a).unwrap())),
    ];

    let r: Vec<f64> = (0..a.n_rows()).map(|i| (i as f64 * 0.3).sin()).collect();
    for (name, m) in &variants {
        let mut z = vec![0.0; a.n_rows()];
        m.apply(&r, &mut z);
        assert!(
            z.iter().all(|v| v.is_finite()),
            "{name} produced non-finite output"
        );
    }
}

#[test]
fn nonblocking_api_reaches_through_umbrella_paths() {
    // The request handles and the pipelined solver are public surface; a
    // dropped re-export must break here, not only in the examples.
    use esr_suite::parcomm::{Cluster, ClusterConfig, ReduceOp};
    let out = Cluster::run(ClusterConfig::new(3), |ctx| {
        let req: esr_suite::parcomm::AllreduceRequest =
            ctx.iallreduce_vec(ReduceOp::Sum, vec![1.0]);
        req.wait(ctx)[0]
    });
    assert!(out.iter().all(|&v| v == 3.0));

    let a = esr_suite::sparsemat::gen::poisson2d(8, 8);
    let problem = Problem::with_ones_solution(a);
    let result = esr_suite::core::run_pipecg(
        &problem,
        4,
        &SolverConfig::reference(),
        CostModel::default(),
        FailureScript::none(),
    )
    .unwrap();
    assert!(result.converged);
}

#[test]
fn resilient_solve_through_umbrella_paths_only() {
    // A miniature version of the crate-level doctest, kept as a plain test
    // so the public API contract is enforced even when doctests are skipped.
    let a = esr_suite::sparsemat::gen::poisson2d(8, 8);
    let problem = Problem::with_ones_solution(a);
    let script = FailureScript::simultaneous(3, 1, 2, 4);
    let result = esr_suite::core::run_pcg(
        &problem,
        4,
        &SolverConfig::resilient(2),
        CostModel::default(),
        script,
    )
    .unwrap();
    assert!(result.converged);
    assert_eq!(result.ranks_recovered, 2);
    let err = result.x.iter().map(|x| (x - 1.0).abs()).fold(0.0, f64::max);
    assert!(err < 1e-6, "reconstruction not exact: {err}");
}
