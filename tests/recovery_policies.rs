//! The recovery-policy scenario matrix: every [`RecoveryPolicy`] ×
//! {single, multiple-simultaneous, overlapping} failures, at
//! non-power-of-two cluster sizes (N = 7, 13) and at the `φ = N−1`
//! boundary. The pinned invariant everywhere: reconstruction at the
//! failure iteration is *exact* — the solve converges to the usual
//! tolerance and the solution error stays below 1e-6 under every policy,
//! whether the failed subdomains were rebuilt on replacement nodes,
//! covered from a finite spare pool, or adopted by survivors on a
//! shrunken cluster.

use esr_core::{run_pcg, ExperimentResult, Problem, RecoveryPolicy, SolverConfig};
use parcomm::{CostModel, FailAt, FailureEvent, FailureScript};
use sparsemat::gen::poisson2d;

fn max_err_ones(res: &ExperimentResult) -> f64 {
    res.x.iter().map(|xi| (xi - 1.0).abs()).fold(0.0, f64::max)
}

fn cost() -> CostModel {
    CostModel::default()
}

/// The three policies under test; `Spares` gets a pool large enough to
/// cover every scenario of the matrix, so it exercises the grant path
/// (pool-exhaustion scenarios are separate tests below).
fn policies() -> Vec<RecoveryPolicy> {
    vec![
        RecoveryPolicy::Replace,
        RecoveryPolicy::Spares(8),
        RecoveryPolicy::Shrink,
    ]
}

/// One solve under `policy`; checks convergence + exactness and returns
/// the result for policy-specific assertions.
fn solve(
    n_grid: (usize, usize),
    nodes: usize,
    phi: usize,
    policy: RecoveryPolicy,
    script: FailureScript,
) -> ExperimentResult {
    let a = poisson2d(n_grid.0, n_grid.1);
    let problem = Problem::with_ones_solution(a);
    let cfg = SolverConfig::resilient_with_policy(phi, policy);
    let res = run_pcg(&problem, nodes, &cfg, cost(), script).unwrap();
    assert!(res.converged, "{policy:?}: did not converge");
    assert!(
        max_err_ones(&res) < 1e-6,
        "{policy:?}: reconstruction not exact, err={}",
        max_err_ones(&res)
    );
    res
}

#[test]
fn single_failure_every_policy_n7() {
    for policy in policies() {
        let res = solve(
            (14, 14),
            7,
            2,
            policy,
            FailureScript::simultaneous(5, 3, 1, 7),
        );
        assert_eq!(res.recoveries, 1, "{policy:?}");
        assert_eq!(res.ranks_recovered, 1, "{policy:?}");
        let expect_retired = match policy {
            RecoveryPolicy::Shrink => 1,
            _ => 0,
        };
        assert_eq!(res.retired_nodes(), expect_retired, "{policy:?}");
    }
}

#[test]
fn multiple_simultaneous_failures_every_policy_n7() {
    for policy in policies() {
        let res = solve(
            (14, 14),
            7,
            3,
            policy,
            FailureScript::simultaneous(6, 2, 3, 7),
        );
        assert_eq!(res.recoveries, 1, "{policy:?}");
        assert_eq!(res.ranks_recovered, 3, "{policy:?}");
        let expect_retired = match policy {
            RecoveryPolicy::Shrink => 3,
            _ => 0,
        };
        assert_eq!(res.retired_nodes(), expect_retired, "{policy:?}");
    }
}

#[test]
fn overlapping_failures_every_policy_n7() {
    // A second node dies at every recovery substep of the first event
    // (paper Sec. 4.1: restart with the enlarged failed set) — under
    // Shrink the restart must also re-derive the adoption plan.
    for policy in policies() {
        for substep in 0..4 {
            let script = FailureScript::new(vec![
                FailureEvent {
                    when: FailAt::Iteration(6),
                    ranks: vec![2],
                },
                FailureEvent {
                    when: FailAt::RecoverySubstep {
                        after_iteration: 6,
                        substep,
                    },
                    ranks: vec![4],
                },
            ]);
            let res = solve((14, 14), 7, 2, policy, script);
            assert_eq!(res.recoveries, 1, "{policy:?} substep={substep}");
            assert_eq!(res.ranks_recovered, 2, "{policy:?} substep={substep}");
        }
    }
}

#[test]
fn scenario_matrix_n13() {
    // The same three failure modes at N = 13 (fold-in/out collective
    // sizes, uneven 13-way partition of a 15×15 grid).
    for policy in policies() {
        let single = solve(
            (15, 15),
            13,
            2,
            policy,
            FailureScript::simultaneous(4, 7, 1, 13),
        );
        assert_eq!(single.ranks_recovered, 1, "{policy:?}");

        let multi = solve(
            (15, 15),
            13,
            3,
            policy,
            FailureScript::simultaneous(7, 11, 3, 13), // wraps: 11, 12, 0
        );
        assert_eq!(multi.ranks_recovered, 3, "{policy:?}");

        let overlapping = solve(
            (15, 15),
            13,
            3,
            policy,
            FailureScript::new(vec![
                FailureEvent {
                    when: FailAt::Iteration(5),
                    ranks: vec![6, 7],
                },
                FailureEvent {
                    when: FailAt::RecoverySubstep {
                        after_iteration: 5,
                        substep: 2,
                    },
                    ranks: vec![9],
                },
            ]),
        );
        assert_eq!(overlapping.ranks_recovered, 3, "{policy:?}");
    }
}

#[test]
fn phi_equals_n_minus_one_boundary() {
    // ψ = φ = N−1: the hardest recoverable event. Under Shrink a single
    // survivor adopts the entire system and finishes the solve alone.
    for policy in policies() {
        let res = solve(
            (14, 14),
            7,
            6,
            policy,
            FailureScript::simultaneous(5, 1, 6, 7),
        );
        assert_eq!(res.ranks_recovered, 6, "{policy:?}");
        if policy == RecoveryPolicy::Shrink {
            assert_eq!(res.retired_nodes(), 6);
            // The lone survivor (rank 0) owns every row afterwards.
            let survivor = res.per_node.iter().find(|o| !o.retired).unwrap();
            assert_eq!(survivor.x_loc.len(), 14 * 14);
        }
    }
}

#[test]
fn replace_iteration_counts_are_policy_default_bitwise() {
    // `Replace` must reproduce the default-policy trajectory bitwise —
    // the pinned counts of tests/iteration_pinning.rs run through the
    // identical code path.
    let a = poisson2d(14, 14);
    let problem = Problem::with_ones_solution(a);
    let script = || FailureScript::simultaneous(6, 2, 2, 7);
    let default_cfg = SolverConfig::resilient(2);
    let explicit = SolverConfig::resilient_with_policy(2, RecoveryPolicy::Replace);
    let r1 = run_pcg(&problem, 7, &default_cfg, cost(), script()).unwrap();
    let r2 = run_pcg(&problem, 7, &explicit, cost(), script()).unwrap();
    assert_eq!(r1.iterations, r2.iterations);
    assert_eq!(r1.solver_residual, r2.solver_residual);
    assert_eq!(r1.vtime, r2.vtime);
}

#[test]
fn covered_spares_match_replace_trajectory() {
    // While the pool covers every failure, the spare-pool protocol is the
    // same reconstruction math as Replace — iteration counts and the
    // final residual must agree exactly.
    let a = poisson2d(14, 14);
    let problem = Problem::with_ones_solution(a);
    let script = || FailureScript::simultaneous(6, 2, 2, 7);
    let replace = run_pcg(&problem, 7, &SolverConfig::resilient(2), cost(), script()).unwrap();
    let spares = run_pcg(
        &problem,
        7,
        &SolverConfig::resilient_with_policy(2, RecoveryPolicy::Spares(4)),
        cost(),
        script(),
    )
    .unwrap();
    assert_eq!(replace.iterations, spares.iterations);
    assert_eq!(replace.solver_residual, spares.solver_residual);
    assert_eq!(spares.retired_nodes(), 0);
}

#[test]
fn spare_pool_exhaustion_falls_back_to_shrink() {
    // Pool of 1, two failure events of 2 ranks each: the first event gets
    // 1 spare (1 replaced, 1 adopted → N shrinks 7→6), the second event
    // finds the pool dry (both adopted → 6→4).
    let a = poisson2d(14, 14);
    let problem = Problem::with_ones_solution(a);
    let script = FailureScript::new(vec![
        FailureEvent {
            when: FailAt::Iteration(4),
            ranks: vec![1, 5],
        },
        FailureEvent {
            when: FailAt::Iteration(12),
            ranks: vec![2, 6],
        },
    ]);
    let cfg = SolverConfig::resilient_with_policy(2, RecoveryPolicy::Spares(1));
    let res = run_pcg(&problem, 7, &cfg, cost(), script).unwrap();
    assert!(res.converged);
    assert!(max_err_ones(&res) < 1e-6, "err={}", max_err_ones(&res));
    assert_eq!(res.recoveries, 2);
    assert_eq!(res.ranks_recovered, 4);
    assert_eq!(res.retired_nodes(), 3); // 4 failed, 1 spare granted
                                        // The adopters cover the whole system: assembled x is complete.
    let covered: usize = res.per_node.iter().map(|o| o.x_loc.len()).sum();
    assert_eq!(covered, 14 * 14);
}

#[test]
fn shrink_survives_failure_after_shrinking() {
    // Failure → shrink → another failure on the already-shrunken cluster:
    // the re-derived redundancy targets of the surviving ring must cover
    // the second event too.
    let a = poisson2d(14, 14);
    let problem = Problem::with_ones_solution(a);
    let script = FailureScript::new(vec![
        FailureEvent {
            when: FailAt::Iteration(3),
            ranks: vec![4],
        },
        FailureEvent {
            when: FailAt::Iteration(11),
            ranks: vec![0],
        },
    ]);
    let cfg = SolverConfig::resilient_with_policy(2, RecoveryPolicy::Shrink);
    let res = run_pcg(&problem, 7, &cfg, cost(), script).unwrap();
    assert!(res.converged);
    assert!(max_err_ones(&res) < 1e-6, "err={}", max_err_ones(&res));
    assert_eq!(res.recoveries, 2);
    assert_eq!(res.retired_nodes(), 2);
}

#[test]
fn shrink_event_naming_retired_rank_is_inert() {
    // The second event names rank 4, which already retired in the first:
    // the hardware is gone, nothing new is lost, the solve just continues.
    let a = poisson2d(12, 12);
    let problem = Problem::with_ones_solution(a);
    let script = FailureScript::new(vec![
        FailureEvent {
            when: FailAt::Iteration(3),
            ranks: vec![4],
        },
        FailureEvent {
            when: FailAt::Iteration(9),
            ranks: vec![4],
        },
    ]);
    let cfg = SolverConfig::resilient_with_policy(1, RecoveryPolicy::Shrink);
    let res = run_pcg(&problem, 6, &cfg, cost(), script).unwrap();
    assert!(res.converged);
    assert!(max_err_ones(&res) < 1e-6);
    assert_eq!(res.recoveries, 1); // second event never fires
    assert_eq!(res.retired_nodes(), 1);
}

#[test]
fn shrink_failure_at_iteration_zero() {
    // No p(j-1) exists yet (z(0) = p(0)); the adopter reconstructs from
    // p(0) copies alone.
    let a = poisson2d(12, 12);
    let problem = Problem::with_ones_solution(a);
    let cfg = SolverConfig::resilient_with_policy(2, RecoveryPolicy::Shrink);
    let res = run_pcg(
        &problem,
        6,
        &cfg,
        cost(),
        FailureScript::simultaneous(0, 1, 2, 6),
    )
    .unwrap();
    assert!(res.converged);
    assert!(max_err_ones(&res) < 1e-6);
    assert_eq!(res.retired_nodes(), 2);
}

#[test]
fn shrink_with_jacobi_and_plain_cg() {
    // The M-given adoption path for the other block-diagonal
    // preconditioner configurations.
    use esr_core::PrecondConfig;
    for precond in [PrecondConfig::None, PrecondConfig::Jacobi] {
        let a = poisson2d(12, 12);
        let problem = Problem::with_ones_solution(a);
        let mut cfg = SolverConfig::resilient_with_policy(2, RecoveryPolicy::Shrink);
        cfg.precond = precond.clone();
        let res = run_pcg(
            &problem,
            6,
            &cfg,
            cost(),
            FailureScript::simultaneous(5, 2, 2, 6),
        )
        .unwrap();
        assert!(res.converged, "{precond:?}");
        assert!(max_err_ones(&res) < 1e-6, "{precond:?}");
        assert_eq!(res.retired_nodes(), 2, "{precond:?}");
    }
}

#[test]
fn solvers_outside_the_engine_reject_non_replace_policies() {
    // The stationary Jacobi solver assumes the full cluster outlives the
    // solve: non-Replace policies come back as a typed ConfigError naming
    // the constraint — a Result, not a panic deep inside a node thread.
    // (Checkpoint/restart used to be in this club; it is engine-backed now
    // and supports the whole policy matrix — covered below.)
    use esr_core::{run_jacobi, ConfigError, SolverKind};
    let a = poisson2d(8, 8);
    let problem = Problem::with_ones_solution(a);
    for policy in [RecoveryPolicy::Spares(2), RecoveryPolicy::Shrink] {
        let cfg = SolverConfig::resilient_with_policy(1, policy);
        let err = run_jacobi(&problem, 4, &cfg, cost(), FailureScript::none())
            .expect_err("Jacobi must reject non-Replace policies");
        match err {
            ConfigError::PolicyUnsupported {
                solver,
                policy: p,
                constraint,
            } => {
                assert_eq!(solver, SolverKind::Jacobi);
                assert_eq!(p, policy);
                assert!(constraint.contains("full cluster"), "{constraint}");
            }
            other => panic!("wrong error variant: {other:?}"),
        }
    }
}

#[test]
fn checkpoint_restart_runs_under_every_policy() {
    // The other half of the engine fold: C/R protection composes with the
    // full recovery-policy axis, not just Replace.
    use esr_core::{run_checkpoint_restart, CrConfig};
    let a = poisson2d(12, 12);
    let problem = Problem::with_ones_solution(a);
    let cr = CrConfig::default().with_interval(4).with_copies(2);
    for policy in [
        RecoveryPolicy::Replace,
        RecoveryPolicy::Spares(2),
        RecoveryPolicy::Shrink,
    ] {
        let cfg = SolverConfig::resilient_with_policy(2, policy);
        let res = run_checkpoint_restart(
            &problem,
            6,
            &cfg,
            &cr,
            cost(),
            FailureScript::simultaneous(5, 2, 2, 6),
        )
        .unwrap();
        assert!(res.converged, "{policy:?}");
        assert_eq!(res.recoveries, 1, "{policy:?}");
        assert!(max_err_ones(&res) < 1e-6, "{policy:?}");
        let expected_retired = if policy == RecoveryPolicy::Shrink {
            2
        } else {
            0
        };
        assert_eq!(res.retired_nodes(), expected_retired, "{policy:?}");
    }
}

#[test]
fn explicit_p_rejects_shrink() {
    use esr_core::ConfigError;
    use precond::{BlockJacobi, BlockSolver};
    use std::sync::Arc;
    let a = poisson2d(12, 12);
    let bj = BlockJacobi::with_blocks(&a, 4, BlockSolver::ExactLdl).unwrap();
    let p = bj.to_explicit_inverse(&a);
    let problem = Problem::with_ones_solution(a);
    let mut cfg = SolverConfig::resilient_with_policy(2, RecoveryPolicy::Shrink);
    cfg.precond = esr_core::PrecondConfig::ExplicitP(Arc::new(p));
    let err = run_pcg(&problem, 6, &cfg, cost(), FailureScript::none())
        .expect_err("P-given reconstruction needs the full cluster");
    match err {
        ConfigError::PrecondUnsupported { constraint, .. } => {
            assert!(constraint.contains("full cluster"), "{constraint}");
        }
        other => panic!("wrong error variant: {other:?}"),
    }
}

#[test]
fn phi_without_a_survivor_is_rejected() {
    let a = poisson2d(8, 8);
    let problem = Problem::with_ones_solution(a);
    let cfg = SolverConfig::resilient(4); // φ = N: no survivor holds copies
    let err = run_pcg(&problem, 4, &cfg, cost(), FailureScript::none())
        .expect_err("φ ≥ N must be rejected");
    assert!(
        matches!(err, esr_core::ConfigError::PhiTooLarge { phi: 4, nodes: 4 }),
        "{err:?}"
    );
}

#[test]
fn converged_at_x0_metrics_are_finite() {
    // b = 0 converges at x(0) = 0 with zero iterations; every per-iteration
    // metric and the relative residual must return 0.0, not NaN (the bench
    // JSON regression this guards).
    let a = poisson2d(8, 8);
    let problem = Problem::new(a, vec![0.0; 64]);
    let res = run_pcg(
        &problem,
        4,
        &SolverConfig::reference(),
        cost(),
        FailureScript::none(),
    )
    .unwrap();
    assert!(res.converged);
    assert_eq!(res.iterations, 0);
    for phase in [
        parcomm::CommPhase::Reduction,
        parcomm::CommPhase::Spmv,
        parcomm::CommPhase::Recovery,
    ] {
        assert_eq!(res.exposed_vtime_per_iter(phase), 0.0);
        assert_eq!(res.wait_vtime_per_iter(phase), 0.0);
        assert_eq!(res.hidden_vtime_per_iter(phase), 0.0);
    }
    assert_eq!(res.relative_residual(), 0.0);
}
