//! Pinned reference iteration counts.
//!
//! The fused-reduction hot path (2 all-reduces per PCG iteration, 3 per
//! BiCGSTAB iteration) must not change solver behaviour: the convergence
//! test still evaluates ‖r(j+1)‖² of the same residual at the same point
//! of the iteration. These pins catch any accidental semantic drift in the
//! reduction schedule — if a refactor legitimately changes the counts
//! (e.g. a different reduction *order* shifting a borderline iteration),
//! re-pin them consciously in the same commit.

use esr_suite::core::{run_bicgstab, run_pcg, run_pipecg, Problem, SolverConfig};
use esr_suite::parcomm::{CostModel, FailureScript};
use esr_suite::sparsemat::gen::poisson2d;

fn pcg_iters(nodes: usize, grid: usize) -> usize {
    let problem = Problem::with_ones_solution(poisson2d(grid, grid));
    let r = run_pcg(
        &problem,
        nodes,
        &SolverConfig::reference(),
        CostModel::default(),
        FailureScript::none(),
    );
    assert!(r.converged, "reference PCG must converge");
    r.iterations
}

fn pipecg_iters(nodes: usize, grid: usize) -> usize {
    let problem = Problem::with_ones_solution(poisson2d(grid, grid));
    let r = run_pipecg(
        &problem,
        nodes,
        &SolverConfig::reference(),
        CostModel::default(),
        FailureScript::none(),
    );
    assert!(r.converged, "reference pipelined PCG must converge");
    r.iterations
}

#[test]
fn pcg_reference_iteration_counts_are_pinned() {
    // Each N is its own pin: the block-Jacobi preconditioner blocks follow
    // the partition, so convergence genuinely depends on the cluster size
    // (and the per-rank partial dot products reassociate differently).
    assert_eq!(pcg_iters(4, 16), 17);
    assert_eq!(pcg_iters(7, 16), 31);
    assert_eq!(pcg_iters(8, 16), 22);
}

#[test]
fn pipecg_reference_iteration_counts_are_pinned() {
    // The pipelined recurrences are a reformulation of the same Krylov
    // method; on these well-conditioned problems they converge in exactly
    // the blocking solver's iteration counts (17/31/22). A drift here means
    // the recurrence restructuring changed the numerics.
    assert_eq!(pipecg_iters(4, 16), 17);
    assert_eq!(pipecg_iters(7, 16), 31);
    assert_eq!(pipecg_iters(8, 16), 22);
}

#[test]
fn pipecg_matches_blocking_pcg_converged_solution() {
    let problem = Problem::with_ones_solution(poisson2d(16, 16));
    let blocking = run_pcg(
        &problem,
        8,
        &SolverConfig::reference(),
        CostModel::default(),
        FailureScript::none(),
    );
    let piped = run_pipecg(
        &problem,
        8,
        &SolverConfig::reference(),
        CostModel::default(),
        FailureScript::none(),
    );
    assert!(blocking.converged && piped.converged);
    let max_diff = blocking
        .x
        .iter()
        .zip(&piped.x)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    assert!(
        max_diff < 1e-6,
        "pipelined diverged from blocking: {max_diff}"
    );
}

#[test]
fn bicgstab_reference_iteration_counts_are_pinned() {
    let problem = Problem::with_ones_solution(poisson2d(12, 12));
    let r = run_bicgstab(
        &problem,
        4,
        &SolverConfig::reference(),
        CostModel::default(),
        FailureScript::none(),
    );
    assert!(r.converged, "reference BiCGSTAB must converge");
    assert_eq!(r.iterations, 10);
}

#[test]
fn resilient_pcg_iteration_count_matches_reference() {
    // ESR's whole point (paper Sec. 5): reconstruction is *exact*, so a
    // failure run performs the same mathematical iterations as the
    // reference run plus the restarted one(s).
    let problem = Problem::with_ones_solution(poisson2d(16, 16));
    let reference = run_pcg(
        &problem,
        6,
        &SolverConfig::reference(),
        CostModel::default(),
        FailureScript::none(),
    );
    let failing = run_pcg(
        &problem,
        6,
        &SolverConfig::resilient(2),
        CostModel::default(),
        FailureScript::simultaneous(5, 1, 2, 6),
    );
    assert!(failing.converged);
    assert_eq!(failing.iterations, reference.iterations);
}
