//! Pinned reference iteration counts.
//!
//! The fused-reduction hot path (2 all-reduces per PCG iteration, 3 per
//! BiCGSTAB iteration) must not change solver behaviour: the convergence
//! test still evaluates ‖r(j+1)‖² of the same residual at the same point
//! of the iteration. These pins catch any accidental semantic drift in the
//! reduction schedule — if a refactor legitimately changes the counts
//! (e.g. a different reduction *order* shifting a borderline iteration),
//! re-pin them consciously in the same commit.

use esr_suite::core::{run_bicgstab, run_pcg, run_pipecg, Problem, SolverConfig};
use esr_suite::parcomm::{CostModel, FailureScript};
use esr_suite::sparsemat::gen::poisson2d;

fn pcg_iters(nodes: usize, grid: usize) -> usize {
    let problem = Problem::with_ones_solution(poisson2d(grid, grid));
    let r = run_pcg(
        &problem,
        nodes,
        &SolverConfig::reference(),
        CostModel::default(),
        FailureScript::none(),
    )
    .unwrap();
    assert!(r.converged, "reference PCG must converge");
    r.iterations
}

fn pipecg_iters(nodes: usize, grid: usize) -> usize {
    let problem = Problem::with_ones_solution(poisson2d(grid, grid));
    let r = run_pipecg(
        &problem,
        nodes,
        &SolverConfig::reference(),
        CostModel::default(),
        FailureScript::none(),
    )
    .unwrap();
    assert!(r.converged, "reference pipelined PCG must converge");
    r.iterations
}

#[test]
fn pcg_reference_iteration_counts_are_pinned() {
    // Each N is its own pin: the block-Jacobi preconditioner blocks follow
    // the partition, so convergence genuinely depends on the cluster size
    // (and the per-rank partial dot products reassociate differently).
    assert_eq!(pcg_iters(4, 16), 17);
    assert_eq!(pcg_iters(7, 16), 31);
    assert_eq!(pcg_iters(8, 16), 22);
}

#[test]
fn pipecg_reference_iteration_counts_are_pinned() {
    // The pipelined recurrences are a reformulation of the same Krylov
    // method; on these well-conditioned problems they converge in exactly
    // the blocking solver's iteration counts (17/31/22). A drift here means
    // the recurrence restructuring changed the numerics.
    assert_eq!(pipecg_iters(4, 16), 17);
    assert_eq!(pipecg_iters(7, 16), 31);
    assert_eq!(pipecg_iters(8, 16), 22);
}

#[test]
fn pipecg_matches_blocking_pcg_converged_solution() {
    let problem = Problem::with_ones_solution(poisson2d(16, 16));
    let blocking = run_pcg(
        &problem,
        8,
        &SolverConfig::reference(),
        CostModel::default(),
        FailureScript::none(),
    )
    .unwrap();
    let piped = run_pipecg(
        &problem,
        8,
        &SolverConfig::reference(),
        CostModel::default(),
        FailureScript::none(),
    )
    .unwrap();
    assert!(blocking.converged && piped.converged);
    let max_diff = blocking
        .x
        .iter()
        .zip(&piped.x)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    assert!(
        max_diff < 1e-6,
        "pipelined diverged from blocking: {max_diff}"
    );
}

#[test]
fn bicgstab_reference_iteration_counts_are_pinned() {
    let problem = Problem::with_ones_solution(poisson2d(12, 12));
    let r = run_bicgstab(
        &problem,
        4,
        &SolverConfig::reference(),
        CostModel::default(),
        FailureScript::none(),
    )
    .unwrap();
    assert!(r.converged, "reference BiCGSTAB must converge");
    assert_eq!(r.iterations, 10);
}

// ---------------------------------------------------------------------
// Replace-path trajectory pins.
//
// These values were captured on the code that *predates* the shared
// RecoveryEngine (when each solver carried its own copy of the recovery
// protocol). The refactored Replace path must reproduce them bitwise:
// same iteration counts, same final residual to the last ulp. A drift
// here means the engine's reconstruction math deviated from paper
// Alg. 2 — re-pin only with a numerical justification in the same commit.
// ---------------------------------------------------------------------

#[test]
fn replace_recovery_trajectories_are_pinned_bitwise() {
    let problem = Problem::with_ones_solution(poisson2d(14, 14));
    let script = || FailureScript::simultaneous(6, 2, 2, 7);

    let r = run_pcg(
        &problem,
        7,
        &SolverConfig::resilient(2),
        CostModel::default(),
        script(),
    )
    .unwrap();
    assert!(r.converged);
    assert_eq!(r.iterations, 20);
    assert_eq!(r.solver_residual, 3.559_024_370_291_282e-8);

    let r = run_pipecg(
        &problem,
        7,
        &SolverConfig::resilient(2),
        CostModel::default(),
        script(),
    )
    .unwrap();
    assert!(r.converged);
    assert_eq!(r.iterations, 20);
    assert_eq!(r.solver_residual, 3.559_024_337_481_355e-8);

    let r = run_bicgstab(
        &problem,
        7,
        &SolverConfig::resilient(2),
        CostModel::default(),
        FailureScript::simultaneous(4, 2, 2, 7),
    )
    .unwrap();
    assert!(r.converged);
    assert_eq!(r.iterations, 13);
    assert_eq!(r.solver_residual, 5.429_056_169_617_638e-8);
}

#[test]
fn replace_overlapping_recovery_trajectory_is_pinned_bitwise() {
    // A second failure arriving at restart substep 2 of the first event:
    // the enlarged-set restart must also replay the pre-engine protocol
    // bitwise.
    use esr_suite::parcomm::{FailAt, FailureEvent};
    let problem = Problem::with_ones_solution(poisson2d(14, 14));
    let script = FailureScript::new(vec![
        FailureEvent {
            when: FailAt::Iteration(5),
            ranks: vec![2],
        },
        FailureEvent {
            when: FailAt::RecoverySubstep {
                after_iteration: 5,
                substep: 2,
            },
            ranks: vec![4],
        },
    ]);
    let r = run_pcg(
        &problem,
        7,
        &SolverConfig::resilient(2),
        CostModel::default(),
        script,
    )
    .unwrap();
    assert!(r.converged);
    assert_eq!(r.ranks_recovered, 2);
    assert_eq!(r.iterations, 20);
    assert_eq!(r.solver_residual, 3.559_024_370_293_216e-8);
}

#[test]
fn checkpoint_restart_trajectories_are_pinned_bitwise() {
    // Captured on the code that *predates* folding checkpoint/restart into
    // the RecoveryEngine (when `cr_pcg_node` carried its own PCG loop and
    // its own deposit/rollback protocol). The engine-backed Replace × PCG
    // C/R path must reproduce them bitwise: the fused loop-top reductions
    // are element-wise identical to the old separate ones, the pack layout
    // is unchanged, and rollback restores the exact deposited state.
    use esr_suite::core::{run_checkpoint_restart, CrConfig};
    let problem = Problem::with_ones_solution(poisson2d(14, 14));

    // Two simultaneous failures at iteration 6, interval 5: rollback to
    // epoch 5 re-executes one iteration.
    let cr = CrConfig::default().with_interval(5).with_copies(2);
    let r = run_checkpoint_restart(
        &problem,
        7,
        &SolverConfig::resilient(2),
        &cr,
        CostModel::default(),
        FailureScript::simultaneous(6, 2, 2, 7),
    )
    .unwrap();
    assert!(r.converged);
    assert_eq!(r.recoveries, 1);
    assert_eq!(r.iterations, 20);
    assert_eq!(r.solver_residual, 3.559_024_370_317_102e-8);
    assert_eq!(r.solver_residual.to_bits(), 0x3e63_1b7c_608f_2b29);

    // Single failure at iteration 13 on 4 nodes, one replica per block:
    // rollback to epoch 10 re-executes three iterations.
    let cr = CrConfig::default().with_interval(5).with_copies(1);
    let r = run_checkpoint_restart(
        &problem,
        4,
        &SolverConfig::resilient(1),
        &cr,
        CostModel::default(),
        FailureScript::simultaneous(13, 2, 1, 4),
    )
    .unwrap();
    assert!(r.converged);
    assert_eq!(r.recoveries, 1);
    assert_eq!(r.iterations, 19);
    assert_eq!(r.solver_residual, 4.851_781_963_741_809e-8);
    assert_eq!(r.solver_residual.to_bits(), 0x3e6a_0c3d_04e1_3b3c);
}

#[test]
fn resilient_pcg_iteration_count_matches_reference() {
    // ESR's whole point (paper Sec. 5): reconstruction is *exact*, so a
    // failure run performs the same mathematical iterations as the
    // reference run plus the restarted one(s).
    let problem = Problem::with_ones_solution(poisson2d(16, 16));
    let reference = run_pcg(
        &problem,
        6,
        &SolverConfig::reference(),
        CostModel::default(),
        FailureScript::none(),
    )
    .unwrap();
    let failing = run_pcg(
        &problem,
        6,
        &SolverConfig::resilient(2),
        CostModel::default(),
        FailureScript::simultaneous(5, 1, 2, 6),
    )
    .unwrap();
    assert!(failing.converged);
    assert_eq!(failing.iterations, reference.iterations);
}
