//! Well-formedness of the virtual-time tracing layer (`--features trace`).
//!
//! [`parcomm::ClusterTrace::validate`] is the production gate; these tests
//! re-derive its invariants independently over a real failure-and-recovery
//! solve so a validator bug and a recorder bug can't cancel out:
//!
//! * span nesting is balanced per rank (every `Close` has an `Open`,
//!   nothing left open at teardown);
//! * timestamps are monotone in the virtual clock per rank (detached
//!   engine-timeline events exempt);
//! * every receive names a matching send — same `(src, dst, tag, seq)`
//!   key, same element count;
//! * on a serial (N = 1) run the critical path degenerates to the single
//!   rank's program order and its length equals the rank's total exposed
//!   communication vtime *exactly* (bitwise `f64` equality — everything
//!   is deterministic).

#![cfg(feature = "trace")]

use std::collections::HashMap;

use esr_suite::core::{run_pcg, Problem, SolverConfig};
use esr_suite::parcomm::{
    Cluster, ClusterConfig, CommPhase, CostModel, FailureScript, Payload, TraceEventKind,
};
use esr_suite::sparsemat::gen::poisson2d;

/// A traced resilient solve with one mid-run failure: the shared fixture
/// for the structural checks.
fn traced_failure_solve() -> esr_suite::parcomm::ClusterTrace {
    let a = poisson2d(12, 12);
    let problem = Problem::with_ones_solution(a);
    let script = FailureScript::simultaneous(5, 1, 1, 4);
    let r = run_pcg(
        &problem,
        4,
        &SolverConfig::resilient(1),
        CostModel::default(),
        script,
    )
    .unwrap();
    assert!(r.converged);
    assert_eq!(r.recoveries, 1);
    r.trace
}

#[test]
fn validator_accepts_a_real_failure_solve() {
    let trace = traced_failure_solve();
    trace.validate().expect("trace must be well-formed");
    // The trace is not degenerate: every rank recorded events, every rank
    // opened iteration spans, and the failure left recovery spans behind.
    assert_eq!(trace.nodes.len(), 4);
    for nt in &trace.nodes {
        assert!(!nt.events.is_empty(), "rank {}: empty trace", nt.rank);
        assert!(
            nt.events.iter().any(|e| matches!(
                e.kind,
                TraceEventKind::Open {
                    name: "iteration",
                    ..
                }
            )),
            "rank {}: no iteration spans",
            nt.rank
        );
    }
    assert!(
        trace
            .nodes
            .iter()
            .any(|nt| nt.events.iter().any(|e| matches!(
                e.kind,
                TraceEventKind::Open {
                    name: "recovery",
                    ..
                }
            ))),
        "no rank recorded a recovery span"
    );
}

#[test]
fn span_nesting_is_balanced_per_rank() {
    let trace = traced_failure_solve();
    for nt in &trace.nodes {
        let mut depth: i64 = 0;
        for (i, ev) in nt.events.iter().enumerate() {
            match ev.kind {
                TraceEventKind::Open { .. } => depth += 1,
                TraceEventKind::Close => {
                    depth -= 1;
                    assert!(depth >= 0, "rank {}: event {i} closes nothing", nt.rank);
                }
                _ => {}
            }
        }
        assert_eq!(depth, 0, "rank {}: spans left open", nt.rank);
    }
}

#[test]
fn timestamps_are_monotone_per_rank() {
    let trace = traced_failure_solve();
    for nt in &trace.nodes {
        let mut last = f64::NEG_INFINITY;
        for (i, ev) in nt.events.iter().enumerate() {
            let engine = matches!(
                ev.kind,
                TraceEventKind::Send { engine: true, .. }
                    | TraceEventKind::Recv { engine: true, .. }
            );
            if !engine {
                assert!(
                    ev.t >= last,
                    "rank {}: event {i} at t={} precedes t={last}",
                    nt.rank,
                    ev.t
                );
                last = ev.t;
            }
        }
    }
}

#[test]
fn every_recv_names_a_matching_send() {
    let trace = traced_failure_solve();
    let mut sends = HashMap::new();
    for nt in &trace.nodes {
        for ev in &nt.events {
            if let TraceEventKind::Send {
                dst,
                tag,
                elems,
                seq,
                ..
            } = ev.kind
            {
                let prev = sends.insert((nt.rank, dst, tag, seq), elems);
                assert!(
                    prev.is_none(),
                    "rank {}: duplicate send seq {seq} to {dst}",
                    nt.rank
                );
            }
        }
    }
    let mut matched = 0usize;
    for nt in &trace.nodes {
        for ev in &nt.events {
            if let TraceEventKind::Recv {
                src,
                tag,
                elems,
                seq,
                ..
            } = ev.kind
            {
                let sent = sends.get(&(src, nt.rank, tag, seq));
                assert_eq!(
                    sent,
                    Some(&elems),
                    "rank {}: recv seq {seq} from {src} tag {tag:?} names no equal-size send",
                    nt.rank
                );
                matched += 1;
            }
        }
    }
    assert!(matched > 0, "no receives recorded at all");
}

#[test]
fn serial_critical_path_equals_total_exposed_vtime() {
    // A serial (N = 1) solve: collectives degenerate to local folds and
    // no message ever leaves the rank, so the total exposed communication
    // vtime — and therefore the critical path — is exactly zero. The
    // equality is still asserted bitwise so a critical-path walker that
    // invents cost out of spans or instants is caught.
    let a = poisson2d(10, 10);
    let problem = Problem::with_ones_solution(a);
    let r = run_pcg(
        &problem,
        1,
        &SolverConfig::reference(),
        CostModel::default(),
        FailureScript::none(),
    )
    .unwrap();
    assert!(r.converged);
    r.trace
        .validate()
        .expect("serial trace must be well-formed");
    assert_eq!(r.trace.nodes.len(), 1);
    assert!(!r.trace.nodes[0].events.is_empty());
    let exposed: f64 = CommPhase::ALL
        .iter()
        .map(|&p| r.per_node[0].stats.exposed_vtime(p))
        .sum();
    let cp = r.trace.critical_path();
    assert_eq!(
        cp.total.to_bits(),
        exposed.to_bits(),
        "critical path {} != total exposed vtime {exposed}",
        cp.total
    );
}

#[test]
fn chain_critical_path_equals_total_exposed_vtime() {
    // The nonzero counterpart: rank 0 blocking-sends a burst of mixed
    // sizes, rank 1 drains it. Every chain through the DAG — pure sender
    // (transfer charges), pure receiver (stalls), or mixed via a cross
    // edge — sums to the same total, because each stall equals the
    // matching transfer charge here. The critical path must reproduce
    // both ranks' exposed vtime bit-for-bit.
    const TAG: u32 = 977;
    const SIZES: [usize; 5] = [3, 64, 1000, 1, 17];
    let (out, trace) = Cluster::run_traced(ClusterConfig::new(2), |ctx| {
        if ctx.rank() == 0 {
            ctx.trace_open("burst", 0);
            for (i, len) in SIZES.into_iter().enumerate() {
                ctx.send(
                    1,
                    TAG + i as u32,
                    Payload::f64s(vec![1.0; len]),
                    CommPhase::Other,
                );
            }
            ctx.trace_close();
        } else {
            for (i, len) in SIZES.into_iter().enumerate() {
                let got = ctx.recv_phase(0, TAG + i as u32, CommPhase::Other);
                assert_eq!(got.elems(), len);
            }
        }
        CommPhase::ALL
            .iter()
            .map(|&p| ctx.stats().exposed_vtime(p))
            .sum::<f64>()
    });
    trace.validate().expect("chain trace must be well-formed");
    let cp = trace.critical_path();
    assert!(cp.total > 0.0);
    assert_eq!(cp.total.to_bits(), out[0].to_bits(), "sender chain");
    assert_eq!(cp.total.to_bits(), out[1].to_bits(), "receiver chain");
}

#[test]
fn chrome_export_of_a_failure_solve_validates() {
    let trace = traced_failure_solve();
    let json = trace.chrome_trace_json();
    let n = esr_suite::parcomm::trace::validate_chrome_trace(&json)
        .expect("chrome trace JSON must parse and carry the required fields");
    assert!(n > 0);
}
