//! End-to-end failure-injection tests across the full stack: every failure
//! scenario of the paper's evaluation (Sec. 7.1) plus the corner cases the
//! algorithm must handle.

use esr_core::{run_pcg, BackupStrategy, PrecondConfig, Problem, SolverConfig};
use parcomm::{CostModel, FailAt, FailureEvent, FailureScript};
use precond::{BlockJacobi, BlockSolver};
use sparsemat::gen::{self, poisson2d, poisson3d};
use sparsemat::BlockPartition;
use std::sync::Arc;

fn max_err_ones(res: &esr_core::ExperimentResult) -> f64 {
    res.x.iter().map(|xi| (xi - 1.0).abs()).fold(0.0, f64::max)
}

fn cost() -> CostModel {
    CostModel::default()
}

#[test]
fn failure_at_each_progress_point() {
    // The paper injects at 20%, 50%, 80% of the reference progress.
    let a = poisson2d(16, 16);
    let problem = Problem::with_ones_solution(a);
    let reference = run_pcg(
        &problem,
        8,
        &SolverConfig::reference(),
        cost(),
        FailureScript::none(),
    )
    .unwrap();
    assert!(reference.converged);
    for pct in [0.2, 0.5, 0.8] {
        let at = ((reference.iterations as f64 * pct) as u64).max(1);
        let script = FailureScript::simultaneous(at, 4, 3, 8);
        let res = run_pcg(&problem, 8, &SolverConfig::resilient(3), cost(), script).unwrap();
        assert!(res.converged, "pct={pct}");
        assert_eq!(res.recoveries, 1, "pct={pct}");
        assert!(
            max_err_ones(&res) < 1e-6,
            "pct={pct} err={}",
            max_err_ones(&res)
        );
    }
}

#[test]
fn failure_at_iteration_zero() {
    // Edge case: no p(j-1) exists yet (z(0) = p(0), β undefined).
    let a = poisson2d(12, 12);
    let problem = Problem::with_ones_solution(a);
    let script = FailureScript::simultaneous(0, 1, 2, 6);
    let res = run_pcg(&problem, 6, &SolverConfig::resilient(2), cost(), script).unwrap();
    assert!(res.converged);
    assert!(max_err_ones(&res) < 1e-6);
}

#[test]
fn psi_less_than_phi() {
    // Tolerating φ=3 but only ψ=1 node fails.
    let a = poisson2d(12, 12);
    let problem = Problem::with_ones_solution(a);
    let script = FailureScript::simultaneous(5, 3, 1, 6);
    let res = run_pcg(&problem, 6, &SolverConfig::resilient(3), cost(), script).unwrap();
    assert!(res.converged);
    assert_eq!(res.ranks_recovered, 1);
    assert!(max_err_ones(&res) < 1e-6);
}

#[test]
fn two_separate_failure_events() {
    // Sequential (non-overlapping) failures at different iterations: the
    // redundancy self-heals after each recovery, so a later event is
    // recoverable even with φ=1.
    let a = poisson2d(16, 16);
    let problem = Problem::with_ones_solution(a);
    let script = FailureScript::new(vec![
        FailureEvent {
            when: FailAt::Iteration(4),
            ranks: vec![2],
        },
        FailureEvent {
            when: FailAt::Iteration(11),
            ranks: vec![5],
        },
    ]);
    let res = run_pcg(&problem, 8, &SolverConfig::resilient(1), cost(), script).unwrap();
    assert!(res.converged);
    assert_eq!(res.recoveries, 2);
    assert_eq!(res.ranks_recovered, 2);
    assert!(max_err_ones(&res) < 1e-6);
}

#[test]
fn repeated_failure_of_same_rank() {
    let a = poisson2d(16, 16);
    let problem = Problem::with_ones_solution(a);
    let script = FailureScript::new(vec![
        FailureEvent {
            when: FailAt::Iteration(3),
            ranks: vec![1],
        },
        FailureEvent {
            when: FailAt::Iteration(9),
            ranks: vec![1],
        },
    ]);
    let res = run_pcg(&problem, 4, &SolverConfig::resilient(1), cost(), script).unwrap();
    assert!(res.converged);
    assert_eq!(res.recoveries, 2);
    assert!(max_err_ones(&res) < 1e-6);
}

#[test]
fn overlapping_failure_during_recovery() {
    // A second node fails while the first reconstruction is in progress
    // (paper Sec. 4.1: restart with the enlarged failed set).
    let a = poisson2d(16, 16);
    let problem = Problem::with_ones_solution(a);
    for substep in 0..4 {
        let script = FailureScript::new(vec![
            FailureEvent {
                when: FailAt::Iteration(6),
                ranks: vec![2],
            },
            FailureEvent {
                when: FailAt::RecoverySubstep {
                    after_iteration: 6,
                    substep,
                },
                ranks: vec![3],
            },
        ]);
        let res = run_pcg(&problem, 8, &SolverConfig::resilient(2), cost(), script).unwrap();
        assert!(res.converged, "substep={substep}");
        assert_eq!(res.recoveries, 1, "substep={substep}");
        assert_eq!(res.ranks_recovered, 2, "substep={substep}");
        assert!(
            max_err_ones(&res) < 1e-6,
            "substep={substep} err={}",
            max_err_ones(&res)
        );
    }
}

#[test]
fn cascading_overlapping_failures() {
    // Failures at two different recovery substeps: two restarts.
    let a = poisson2d(18, 18);
    let problem = Problem::with_ones_solution(a);
    let script = FailureScript::new(vec![
        FailureEvent {
            when: FailAt::Iteration(5),
            ranks: vec![0],
        },
        FailureEvent {
            when: FailAt::RecoverySubstep {
                after_iteration: 5,
                substep: 1,
            },
            ranks: vec![4],
        },
        FailureEvent {
            when: FailAt::RecoverySubstep {
                after_iteration: 5,
                substep: 2,
            },
            ranks: vec![7],
        },
    ]);
    let res = run_pcg(&problem, 9, &SolverConfig::resilient(3), cost(), script).unwrap();
    assert!(res.converged);
    assert_eq!(res.recoveries, 1);
    assert_eq!(res.ranks_recovered, 3);
    assert!(max_err_ones(&res) < 1e-6);
}

#[test]
fn full_block_strategy_survives() {
    let a = poisson2d(12, 12);
    let problem = Problem::with_ones_solution(a);
    let mut cfg = SolverConfig::resilient(2);
    cfg.resilience.as_mut().unwrap().strategy = BackupStrategy::FullBlock;
    let script = FailureScript::simultaneous(5, 1, 2, 6);
    let res = run_pcg(&problem, 6, &cfg, cost(), script).unwrap();
    assert!(res.converged);
    assert!(max_err_ones(&res) < 1e-6);
}

#[test]
fn consecutive_ring_strategy_survives() {
    let a = poisson2d(12, 12);
    let problem = Problem::with_ones_solution(a);
    let mut cfg = SolverConfig::resilient(3);
    cfg.resilience.as_mut().unwrap().strategy = BackupStrategy::MinimalConsecutive;
    let script = FailureScript::simultaneous(5, 2, 3, 6);
    let res = run_pcg(&problem, 6, &cfg, cost(), script).unwrap();
    assert!(res.converged);
    assert_eq!(res.ranks_recovered, 3);
    assert!(max_err_ones(&res) < 1e-6);
}

#[test]
fn checkpoint_restart_baseline_survives_failures() {
    use esr_core::{run_checkpoint_restart, CrConfig};
    let a = poisson2d(14, 14);
    let problem = Problem::with_ones_solution(a);
    let script = FailureScript::simultaneous(9, 1, 2, 7);
    let cr = CrConfig {
        interval: 4,
        copies: 2,
    };
    let res = run_checkpoint_restart(
        &problem,
        7,
        &SolverConfig::resilient(2),
        &cr,
        cost(),
        script,
    )
    .unwrap();
    assert!(res.converged);
    assert_eq!(res.recoveries, 1);
    assert!(max_err_ones(&res) < 1e-6);
}

#[test]
fn ilu_inner_solver_matches_paper_setup() {
    // The paper's PETSc implementation uses ILU for the reconstruction
    // blocks instead of an exact factorization.
    let a = poisson2d(14, 14);
    let problem = Problem::with_ones_solution(a);
    let mut cfg = SolverConfig::resilient(3);
    cfg.resilience
        .as_mut()
        .unwrap()
        .recovery
        .exact_block_precond = false;
    let script = FailureScript::simultaneous(6, 2, 3, 7);
    let res = run_pcg(&problem, 7, &cfg, cost(), script).unwrap();
    assert!(res.converged);
    assert!(max_err_ones(&res) < 1e-6);
}

#[test]
fn explicit_p_reconstruction_with_coupling() {
    // P-given variant (paper Alg. 2 lines 5-6) with a preconditioner that
    // couples across node boundaries: blocks misaligned with the
    // partition, so P_{If,I\If} ≠ 0 and the full gather + distributed
    // P-solve path runs.
    let a = poisson2d(12, 12); // n = 144 over 6 nodes: blocks of 24
    let bj = BlockJacobi::with_blocks(&a, 4, BlockSolver::ExactLdl).unwrap(); // blocks of 36
    let p = bj.to_explicit_inverse(&a);
    let problem = Problem::with_ones_solution(a);
    let cfg = SolverConfig {
        precond: PrecondConfig::ExplicitP(Arc::new(p)),
        ..SolverConfig::resilient(2)
    };
    let script = FailureScript::simultaneous(5, 2, 2, 6);
    let res = run_pcg(&problem, 6, &cfg, cost(), script).unwrap();
    assert!(res.converged);
    assert_eq!(res.ranks_recovered, 2);
    assert!(max_err_ones(&res) < 1e-6, "err={}", max_err_ones(&res));
}

#[test]
fn esr_state_matches_failure_free_state() {
    // The reconstruction is *exact*: with exact local solves, a run with
    // failures converges in (almost exactly) the same number of
    // iterations to (almost exactly) the same residual as the clean run.
    let a = poisson3d(8, 8, 8);
    let problem = Problem::with_random_rhs(a, 42);
    let clean = run_pcg(
        &problem,
        8,
        &SolverConfig::resilient(3),
        cost(),
        FailureScript::none(),
    )
    .unwrap();
    let script = FailureScript::simultaneous(10, 3, 3, 8);
    let failed = run_pcg(&problem, 8, &SolverConfig::resilient(3), cost(), script).unwrap();
    assert!(clean.converged && failed.converged);
    assert!(
        clean.iterations.abs_diff(failed.iterations) <= 2,
        "clean {} vs failed {}",
        clean.iterations,
        failed.iterations
    );
    let max_diff = clean
        .x
        .iter()
        .zip(&failed.x)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    let scale = clean.x.iter().map(|v| v.abs()).fold(0.0, f64::max);
    assert!(
        max_diff / scale < 1e-6,
        "solutions diverged: {max_diff} (scale {scale})"
    );
}

#[test]
fn wraparound_failure_ranks() {
    // Contiguous failed ranks that wrap around the ring (N-1, 0).
    let a = poisson2d(12, 12);
    let problem = Problem::with_ones_solution(a);
    let script = FailureScript::simultaneous(4, 5, 2, 6); // ranks 5, 0
    let res = run_pcg(&problem, 6, &SolverConfig::resilient(2), cost(), script).unwrap();
    assert!(res.converged);
    assert_eq!(res.ranks_recovered, 2);
    assert!(max_err_ones(&res) < 1e-6);
}

#[test]
fn uneven_partition_with_failures() {
    // n not divisible by N: some nodes own ⌈n/N⌉, others ⌊n/N⌋ rows.
    let a = poisson2d(13, 11); // n = 143 over 7 nodes
    let problem = Problem::with_ones_solution(a);
    let part = BlockPartition::new(143, 7);
    assert_ne!(part.len_of(0), part.len_of(6));
    let script = FailureScript::simultaneous(5, 0, 2, 7);
    let res = run_pcg(&problem, 7, &SolverConfig::resilient(2), cost(), script).unwrap();
    assert!(res.converged);
    assert!(max_err_ones(&res) < 1e-6);
}

#[test]
fn all_paper_matrix_classes_survive_failures() {
    // Tiny instances of all eight Table-1 analogs survive 2 simultaneous
    // failures with φ=2.
    for id in gen::suite::all_ids() {
        let a = gen::generate(id, 0.0005);
        let n = a.n_rows();
        let problem = Problem::with_ones_solution(a);
        let script = FailureScript::simultaneous(2, 1, 2, 4);
        let mut cfg = SolverConfig::resilient(2);
        cfg.max_iter = 20_000;
        let res = run_pcg(&problem, 4, &cfg, cost(), script).unwrap();
        assert!(res.converged, "{id:?} (n={n}) did not converge");
        assert_eq!(res.recoveries, 1, "{id:?}");
        assert!(
            max_err_ones(&res) < 1e-5,
            "{id:?} err={}",
            max_err_ones(&res)
        );
    }
}

#[test]
fn more_failures_than_phi_is_unrecoverable() {
    // ψ > φ must be detected and reported, not silently mis-recovered.
    let a = poisson2d(10, 10);
    let problem = Problem::with_ones_solution(a);
    let script = FailureScript::simultaneous(4, 0, 3, 5); // ψ=3 > φ=1
    let result = std::panic::catch_unwind(|| {
        run_pcg(&problem, 5, &SolverConfig::resilient(1), cost(), script).unwrap()
    });
    assert!(result.is_err(), "ψ > φ must fail loudly");
}

#[test]
fn failures_with_eight_simultaneous_nodes() {
    // The paper's largest scenario: ψ = φ = 8.
    let a = poisson2d(24, 24);
    let problem = Problem::with_ones_solution(a);
    let script = FailureScript::simultaneous(6, 4, 8, 16);
    let res = run_pcg(&problem, 16, &SolverConfig::resilient(8), cost(), script).unwrap();
    assert!(res.converged);
    assert_eq!(res.ranks_recovered, 8);
    assert!(max_err_ones(&res) < 1e-6, "err={}", max_err_ones(&res));
}
