//! End-to-end tests for the resilient communication-hiding pipelined PCG:
//! numerical agreement with the blocking solver, recovery from single,
//! multiple-simultaneous, and overlapping failures, and the latency-hiding
//! property on the overlap-aware virtual clock.

use esr_core::{run_pcg, run_pipecg, Problem, SolverConfig};
use parcomm::{CommPhase, CostModel, FailAt, FailureEvent, FailureScript};
use sparsemat::gen::{poisson2d, poisson3d};

fn max_err_ones(res: &esr_core::ExperimentResult) -> f64 {
    res.x.iter().map(|xi| (xi - 1.0).abs()).fold(0.0, f64::max)
}

fn cost() -> CostModel {
    CostModel::default()
}

#[test]
fn failure_free_pipecg_matches_blocking_pcg() {
    let a = poisson2d(16, 16);
    let problem = Problem::with_ones_solution(a);
    let blocking = run_pcg(
        &problem,
        6,
        &SolverConfig::reference(),
        cost(),
        FailureScript::none(),
    )
    .unwrap();
    let piped = run_pipecg(
        &problem,
        6,
        &SolverConfig::reference(),
        cost(),
        FailureScript::none(),
    )
    .unwrap();
    assert!(blocking.converged && piped.converged);
    // Same Krylov method up to rounding: iteration counts nearly agree and
    // both reach the same solution.
    assert!(
        blocking.iterations.abs_diff(piped.iterations) <= 2,
        "blocking {} vs pipelined {}",
        blocking.iterations,
        piped.iterations
    );
    let max_diff = blocking
        .x
        .iter()
        .zip(&piped.x)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    assert!(max_diff < 1e-6, "solutions diverged: {max_diff}");
    assert!(max_err_ones(&piped) < 1e-6);
}

#[test]
fn pipecg_overlap_reduces_exposed_reduction_time() {
    // The point of the pipelined method: at sensible scale the reduction
    // cost is (largely) hidden behind SpMV + preconditioner work, so the
    // *exposed* reduction-phase time per iteration must come in strictly
    // below blocking PCG's, which pays 2 full reductions per iteration.
    let a = poisson2d(32, 32);
    let problem = Problem::with_ones_solution(a);
    for nodes in [8usize, 16] {
        let blocking = run_pcg(
            &problem,
            nodes,
            &SolverConfig::reference(),
            cost(),
            FailureScript::none(),
        )
        .unwrap();
        let piped = run_pipecg(
            &problem,
            nodes,
            &SolverConfig::reference(),
            cost(),
            FailureScript::none(),
        )
        .unwrap();
        assert!(blocking.converged && piped.converged);
        let eb = blocking.exposed_vtime_per_iter(CommPhase::Reduction);
        let ep = piped.exposed_vtime_per_iter(CommPhase::Reduction);
        assert!(
            ep < eb,
            "N={nodes}: pipelined exposed reduction {ep:.3e} !< blocking {eb:.3e}"
        );
        // And some reduction time was genuinely hidden behind compute.
        let hidden = piped.hidden_vtime_per_iter(CommPhase::Reduction);
        assert!(hidden > 0.0, "N={nodes}: no reduction time was hidden");
    }
}

#[test]
fn pipecg_survives_single_failure() {
    let a = poisson2d(12, 12);
    let problem = Problem::with_ones_solution(a);
    let script = FailureScript::simultaneous(5, 1, 1, 4);
    let res = run_pipecg(&problem, 4, &SolverConfig::resilient(1), cost(), script).unwrap();
    assert!(res.converged);
    assert_eq!(res.recoveries, 1);
    assert_eq!(res.ranks_recovered, 1);
    assert!(res.vtime_recovery > 0.0);
    assert!(max_err_ones(&res) < 1e-6, "err={}", max_err_ones(&res));
}

#[test]
fn pipecg_survives_three_simultaneous_failures() {
    let a = poisson2d(14, 14);
    let problem = Problem::with_ones_solution(a);
    let script = FailureScript::simultaneous(8, 2, 3, 7);
    let res = run_pipecg(&problem, 7, &SolverConfig::resilient(3), cost(), script).unwrap();
    assert!(res.converged);
    assert_eq!(res.recoveries, 1);
    assert_eq!(res.ranks_recovered, 3);
    assert!(max_err_ones(&res) < 1e-6, "err={}", max_err_ones(&res));
}

#[test]
fn pipecg_failure_at_iteration_zero() {
    // Edge case: no p(j-1), s, q, z exist yet; only x, r, u, w are live.
    let a = poisson2d(12, 12);
    let problem = Problem::with_ones_solution(a);
    let script = FailureScript::simultaneous(0, 1, 2, 6);
    let res = run_pipecg(&problem, 6, &SolverConfig::resilient(2), cost(), script).unwrap();
    assert!(res.converged);
    assert!(max_err_ones(&res) < 1e-6);
}

#[test]
fn pipecg_overlapping_failure_during_recovery() {
    // A second node fails while the first reconstruction is in progress,
    // at each of the four substep boundaries (restart with enlarged set).
    let a = poisson2d(16, 16);
    let problem = Problem::with_ones_solution(a);
    for substep in 0..4 {
        let script = FailureScript::new(vec![
            FailureEvent {
                when: FailAt::Iteration(6),
                ranks: vec![2],
            },
            FailureEvent {
                when: FailAt::RecoverySubstep {
                    after_iteration: 6,
                    substep,
                },
                ranks: vec![3],
            },
        ]);
        let res = run_pipecg(&problem, 8, &SolverConfig::resilient(2), cost(), script).unwrap();
        assert!(res.converged, "substep={substep}");
        assert_eq!(res.recoveries, 1, "substep={substep}");
        assert_eq!(res.ranks_recovered, 2, "substep={substep}");
        assert!(
            max_err_ones(&res) < 1e-6,
            "substep={substep} err={}",
            max_err_ones(&res)
        );
    }
}

#[test]
fn pipecg_two_separate_failure_events() {
    // Redundancy self-heals after each recovery: a later event is
    // recoverable even with φ=1.
    let a = poisson2d(16, 16);
    let problem = Problem::with_ones_solution(a);
    let script = FailureScript::new(vec![
        FailureEvent {
            when: FailAt::Iteration(4),
            ranks: vec![2],
        },
        FailureEvent {
            when: FailAt::Iteration(11),
            ranks: vec![5],
        },
    ]);
    let res = run_pipecg(&problem, 8, &SolverConfig::resilient(1), cost(), script).unwrap();
    assert!(res.converged);
    assert_eq!(res.recoveries, 2);
    assert_eq!(res.ranks_recovered, 2);
    assert!(max_err_ones(&res) < 1e-6);
}

#[test]
fn pipecg_reconstructed_state_matches_failure_free_trajectory() {
    // ESR is *exact*: with failures the solver converges in (almost) the
    // same iterations to (almost) the same solution as the clean run —
    // the same tolerance contract the blocking ESR tests use.
    let a = poisson3d(8, 8, 8);
    let problem = Problem::with_random_rhs(a, 42);
    let clean = run_pipecg(
        &problem,
        8,
        &SolverConfig::resilient(3),
        cost(),
        FailureScript::none(),
    )
    .unwrap();
    let script = FailureScript::simultaneous(10, 3, 3, 8);
    let failed = run_pipecg(&problem, 8, &SolverConfig::resilient(3), cost(), script).unwrap();
    assert!(clean.converged && failed.converged);
    assert!(
        clean.iterations.abs_diff(failed.iterations) <= 2,
        "clean {} vs failed {}",
        clean.iterations,
        failed.iterations
    );
    let max_diff = clean
        .x
        .iter()
        .zip(&failed.x)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    let scale = clean.x.iter().map(|v| v.abs()).fold(0.0, f64::max);
    assert!(
        max_diff / scale < 1e-6,
        "solutions diverged: {max_diff} (scale {scale})"
    );
}

#[test]
fn pipecg_uneven_partition_with_failures() {
    let a = poisson2d(13, 11); // n = 143 over 7 nodes
    let problem = Problem::with_ones_solution(a);
    let script = FailureScript::simultaneous(5, 0, 2, 7);
    let res = run_pipecg(&problem, 7, &SolverConfig::resilient(2), cost(), script).unwrap();
    assert!(res.converged);
    assert!(max_err_ones(&res) < 1e-6);
}

#[test]
fn pipecg_rejects_explicit_p() {
    use esr_core::PrecondConfig;
    use precond::{BlockJacobi, BlockSolver};
    use std::sync::Arc;
    let a = poisson2d(8, 8);
    let bj = BlockJacobi::with_blocks(&a, 4, BlockSolver::ExactLdl).unwrap();
    let p = bj.to_explicit_inverse(&a);
    let problem = Problem::with_ones_solution(a);
    let cfg = SolverConfig {
        precond: PrecondConfig::ExplicitP(Arc::new(p)),
        ..SolverConfig::reference()
    };
    let result = std::panic::catch_unwind(|| {
        run_pipecg(&problem, 4, &cfg, cost(), FailureScript::none()).unwrap()
    });
    assert!(result.is_err(), "ExplicitP must be rejected loudly");
}
