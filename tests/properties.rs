//! Property-based tests over the full stack: the redundancy coverage
//! invariant for arbitrary sparsity patterns, and exactness of the ESR
//! reconstruction on randomized problems.

use proptest::prelude::*;

use esr_core::{run_pcg, Problem, SolverConfig};
use parcomm::{CostModel, FailureScript};
use sparsemat::gen::banded_spd;
use sparsemat::{BlockPartition, Coo};

/// Random natural-send pattern: for each peer, a random subset of the
/// owned offsets.
fn send_pattern(nodes: usize, my_len: usize) -> impl Strategy<Value = Vec<Vec<usize>>> {
    proptest::collection::vec(proptest::collection::vec(0..my_len, 0..=my_len), nodes).prop_map(
        move |mut raw| {
            for (k, list) in raw.iter_mut().enumerate() {
                list.sort_unstable();
                list.dedup();
                if k == 0 {
                    list.clear(); // rank 0 is "self" in the tests below
                }
            }
            raw
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Eqn. (5)/(6) guarantee: after adding the extra sets, every owned
    /// element has at least φ distinct non-owner holders — for *any*
    /// sparsity pattern, node count, and φ.
    #[test]
    fn redundancy_coverage_invariant(
        nodes in 2usize..9,
        my_len in 1usize..12,
        phi_seed in 0usize..8,
        pattern in send_pattern(9, 12),
    ) {
        let phi = 1 + phi_seed % (nodes - 1).max(1);
        let send_natural: Vec<Vec<usize>> = (0..nodes)
            .map(|k| {
                pattern[k]
                    .iter()
                    .copied()
                    .filter(|&s| s < my_len)
                    .collect()
            })
            .collect();
        let extras = esr_core::redundancy::compute_extra_sends(
            0,
            nodes,
            phi,
            &esr_core::BackupStrategy::Minimal,
            my_len,
            &send_natural,
        );
        prop_assert_eq!(
            esr_core::redundancy::check_coverage(
                0, nodes, phi, my_len, &send_natural, &extras
            ),
            None
        );
    }

    /// Backup targets (Eqn. 5) are always distinct non-self ranks.
    #[test]
    fn backup_targets_always_valid(nodes in 2usize..40, i_seed in 0usize..40, phi_seed in 0usize..40) {
        let i = i_seed % nodes;
        let phi = 1 + phi_seed % (nodes - 1);
        let t = esr_core::redundancy::backup_targets(i, nodes, phi);
        let mut u = t.clone();
        u.sort_unstable();
        u.dedup();
        prop_assert_eq!(u.len(), phi);
        prop_assert!(!t.contains(&i));
    }
}

proptest! {
    // End-to-end solves are expensive; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any random banded SPD system, any valid failure scenario: the
    /// resilient solver converges to the right solution.
    #[test]
    fn random_system_random_failure_recovers(
        seed in 0u64..1000,
        nodes in 3usize..7,
        psi in 1usize..3,
        fail_at in 1u64..12,
        first_rank in 0usize..7,
    ) {
        let n = 96;
        let a = banded_spd(n, 6, 0.7, seed);
        let problem = Problem::with_ones_solution(a);
        let phi = psi; // tolerate exactly what we inject
        let script = FailureScript::simultaneous(
            fail_at,
            first_rank % nodes,
            psi.min(nodes - 1),
            nodes,
        );
        let mut cfg = SolverConfig::resilient(phi.min(nodes - 1));
        cfg.max_iter = 5000;
        let res = run_pcg(&problem, nodes, &cfg, CostModel::default(), script).unwrap();
        // Banded diagonally dominant systems converge fast; a scheduled
        // failure beyond convergence simply never fires.
        prop_assert!(res.converged);
        let err = res.x.iter().map(|x| (x - 1.0).abs()).fold(0.0, f64::max);
        prop_assert!(err < 1e-5, "err = {err}");
    }

    /// Sequential PCG and the distributed solver agree on random SPD
    /// systems for any node count that divides evenly or not.
    #[test]
    fn distributed_matches_sequential(
        seed in 0u64..1000,
        nodes in 1usize..9,
        n in 40usize..120,
    ) {
        let a = banded_spd(n, 4, 0.8, seed);
        let problem = Problem::with_random_rhs(a.clone(), seed ^ 0xABCD);
        let res = run_pcg(
            &problem,
            nodes,
            &SolverConfig::reference(),
            CostModel::default(),
            FailureScript::none(),
        ).unwrap();
        prop_assert!(res.converged);
        // Oracle: sequential PCG with node-aligned block Jacobi.
        let part = BlockPartition::new(n, nodes);
        let bj = precond::BlockJacobi::from_partition(
            &a,
            &part,
            precond::BlockSolver::ExactLdl,
        ).unwrap();
        let seq = krylov::pcg(&a, &problem.b, &vec![0.0; n], &bj, 1e-8, 10_000);
        prop_assert!(seq.converged());
        let scale = seq.x.iter().map(|v| v.abs()).fold(1e-30, f64::max);
        let max_diff = res.x.iter().zip(&seq.x)
            .map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
        prop_assert!(max_diff / scale < 1e-5, "diff {max_diff}");
    }
}

/// Deterministic cross-checks (not random, but spanning the stack).
#[test]
fn coo_assembly_order_is_irrelevant() {
    let mut fwd = Coo::new(50, 50);
    let mut rev = Coo::new(50, 50);
    let entries: Vec<(usize, usize, f64)> = (0..200)
        .map(|i| ((i * 7) % 50, (i * 13) % 50, i as f64 * 0.5 - 3.0))
        .collect();
    for &(r, c, v) in &entries {
        fwd.push(r, c, v);
    }
    for &(r, c, v) in entries.iter().rev() {
        rev.push(r, c, v);
    }
    assert_eq!(fwd.to_csr(), rev.to_csr());
}
