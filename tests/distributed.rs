//! Cross-crate integration tests of the failure-free distributed solver:
//! numerical parity with the sequential baselines, overhead accounting
//! consistency with the analytical model, and scaling edge cases.

use esr_core::{analysis, run_pcg, BackupStrategy, PrecondConfig, Problem, SolverConfig};
use parcomm::{CommPhase, CostModel, FailureScript};
use sparsemat::gen::{self, poisson2d, poisson3d};
use sparsemat::BlockPartition;

fn cost() -> CostModel {
    CostModel::default()
}

#[test]
fn single_node_cluster_works() {
    let a = poisson2d(10, 10);
    let problem = Problem::with_ones_solution(a);
    let res = run_pcg(
        &problem,
        1,
        &SolverConfig::reference(),
        cost(),
        FailureScript::none(),
    )
    .unwrap();
    assert!(res.converged);
    // Exact block Jacobi on one node == a direct solve: 1-2 iterations.
    assert!(res.iterations <= 2, "iterations {}", res.iterations);
    let err = res.x.iter().map(|x| (x - 1.0).abs()).fold(0.0, f64::max);
    assert!(err < 1e-8);
}

#[test]
fn iterations_agree_across_node_counts() {
    // Block Jacobi weakens with more blocks, so iteration counts grow
    // with N — but the answer must not change.
    let a = poisson3d(6, 6, 6);
    let problem = Problem::with_random_rhs(a, 17);
    let mut prev_iters = 0;
    for nodes in [2usize, 4, 8] {
        let res = run_pcg(
            &problem,
            nodes,
            &SolverConfig::reference(),
            cost(),
            FailureScript::none(),
        )
        .unwrap();
        assert!(res.converged, "N={nodes}");
        assert!(
            res.iterations >= prev_iters,
            "block Jacobi should weaken with N: {} then {}",
            prev_iters,
            res.iterations
        );
        prev_iters = res.iterations;
        assert!(res.relative_residual() <= 1e-8);
    }
}

#[test]
fn redundancy_traffic_matches_analysis() {
    // The measured per-iteration redundancy elements must equal the
    // prediction computed from the matrix pattern alone (Sec. 4.2).
    let a = poisson2d(16, 16);
    let part = BlockPartition::new(256, 8);
    for phi in [1usize, 3] {
        let predicted =
            analysis::predict_overhead(&a, &part, phi, &BackupStrategy::Minimal, &cost());
        let problem = Problem::with_ones_solution(a.clone());
        let res = run_pcg(
            &problem,
            8,
            &SolverConfig::resilient(phi),
            cost(),
            FailureScript::none(),
        )
        .unwrap();
        assert!(res.converged);
        let measured = res.stats.elems(CommPhase::Redundancy);
        assert_eq!(
            measured,
            (predicted.total_extra_elems * res.iterations) as u64,
            "φ={phi}: measured {measured}, predicted/iter {}",
            predicted.total_extra_elems
        );
    }
}

#[test]
fn undisturbed_overhead_grows_with_phi() {
    // Table 2's "relative overhead undisturbed" column: vtime grows with
    // the number of redundant copies.
    let a = poisson3d(8, 8, 8);
    let problem = Problem::with_random_rhs(a, 5);
    let t0 = run_pcg(
        &problem,
        8,
        &SolverConfig::reference(),
        cost(),
        FailureScript::none(),
    )
    .unwrap();
    let mut prev = t0.vtime;
    for phi in [1usize, 3, 7] {
        let res = run_pcg(
            &problem,
            8,
            &SolverConfig::resilient(phi),
            cost(),
            FailureScript::none(),
        )
        .unwrap();
        assert_eq!(res.iterations, t0.iterations, "φ={phi}: same numerics");
        assert!(
            res.vtime >= prev,
            "φ={phi}: vtime {} should be ≥ {}",
            res.vtime,
            prev
        );
        prev = res.vtime;
    }
}

#[test]
fn plain_cg_and_jacobi_variants_work_distributed() {
    let a = poisson2d(12, 12);
    let problem = Problem::with_ones_solution(a);
    for precond in [PrecondConfig::None, PrecondConfig::Jacobi] {
        let cfg = SolverConfig {
            precond,
            max_iter: 5000,
            ..SolverConfig::reference()
        };
        let res = run_pcg(&problem, 6, &cfg, cost(), FailureScript::none()).unwrap();
        assert!(res.converged);
        let err = res.x.iter().map(|x| (x - 1.0).abs()).fold(0.0, f64::max);
        assert!(err < 1e-6);
    }
}

#[test]
fn vclock_separates_setup_from_solve() {
    let a = poisson2d(12, 12);
    let problem = Problem::with_ones_solution(a);
    let res = run_pcg(
        &problem,
        4,
        &SolverConfig::reference(),
        cost(),
        FailureScript::none(),
    )
    .unwrap();
    assert!(res.vtime_setup > 0.0);
    assert!(res.vtime > 0.0);
    assert_eq!(res.vtime_recovery, 0.0);
}

#[test]
fn vtime_is_deterministic_across_runs() {
    // The virtual clock is a function of the algorithm, not the host's
    // thread scheduling: repeated runs agree bitwise.
    let a = poisson2d(10, 10);
    let problem = Problem::with_ones_solution(a);
    let r1 = run_pcg(
        &problem,
        5,
        &SolverConfig::resilient(2),
        cost(),
        FailureScript::none(),
    )
    .unwrap();
    let r2 = run_pcg(
        &problem,
        5,
        &SolverConfig::resilient(2),
        cost(),
        FailureScript::none(),
    )
    .unwrap();
    assert_eq!(r1.vtime, r2.vtime);
    assert_eq!(r1.iterations, r2.iterations);
    assert_eq!(r1.solver_residual, r2.solver_residual);
}

#[test]
fn suite_matrices_solve_distributed() {
    for id in gen::suite::all_ids() {
        let a = gen::generate(id, 0.0005);
        let problem = Problem::with_ones_solution(a);
        let mut cfg = SolverConfig::reference();
        cfg.max_iter = 20_000;
        let res = run_pcg(&problem, 4, &cfg, cost(), FailureScript::none()).unwrap();
        assert!(res.converged, "{id:?}");
        let err = res.x.iter().map(|x| (x - 1.0).abs()).fold(0.0, f64::max);
        assert!(err < 1e-5, "{id:?}: err {err}");
    }
}

#[test]
fn wall_and_virtual_time_both_recorded() {
    let a = poisson2d(8, 8);
    let problem = Problem::with_ones_solution(a);
    let res = run_pcg(
        &problem,
        2,
        &SolverConfig::reference(),
        cost(),
        FailureScript::none(),
    )
    .unwrap();
    assert!(res.wall.as_nanos() > 0);
    assert!(res.vtime > 0.0);
}
