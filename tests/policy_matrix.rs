//! The full recovery scenario matrix through the shared `RecoveryEngine`:
//!
//! {ESR, Checkpoint} × {Replace, Spares(1), Shrink} × {PCG, PipeCG, BiCGSTAB}
//!                   × {single, simultaneous, overlapping}
//!
//! at N = 7 and N = 13 (non-power-of-two collective sizes, uneven
//! partitions). Before the engine existed this grid had 3 working cells
//! (the three failure modes on blocking PCG × Replace, plus the PCG-only
//! policy module); every cell now runs through one shared protocol — and
//! since the checkpoint/restart fold, both protection flavors share the
//! attempt loop, so the C/R half of the grid rides the same machinery.
//!
//! The pinned invariant everywhere: reconstruction at the failure
//! boundary is *exact* — the solve converges to the usual tolerance and
//! the solution error stays below 1e-6 under every policy, whether the
//! failed subdomains were rebuilt on replacement nodes, partially covered
//! from an undersized spare pool (mixed replace + adopt events), or
//! adopted by survivors on a shrunken cluster.
//!
//! `Spares(1)` is deliberately *undersized* for the ψ = 2 scenarios: one
//! failed rank gets the spare and rebuilds in place, the other is adopted
//! — the mixed event exercises both halves of the engine at once.

use esr_core::{
    run_bicgstab, run_pcg, run_pipecg, CrConfig, ExperimentResult, Problem, Protection,
    RecoveryPolicy, SolverConfig,
};
use parcomm::{CostModel, FailAt, FailureEvent, FailureScript};
use sparsemat::gen::poisson2d;

#[derive(Clone, Copy, Debug)]
enum Solver {
    Pcg,
    PipeCg,
    BiCgStab,
}

const SOLVERS: [Solver; 3] = [Solver::Pcg, Solver::PipeCg, Solver::BiCgStab];

fn policies() -> Vec<RecoveryPolicy> {
    vec![
        RecoveryPolicy::Replace,
        RecoveryPolicy::Spares(1),
        RecoveryPolicy::Shrink,
    ]
}

#[derive(Clone, Copy, Debug)]
enum Failure {
    /// One rank dies.
    Single,
    /// Two ranks die at the same boundary.
    Simultaneous,
    /// A second rank dies at restart substep `s` of the first recovery.
    Overlapping(u32),
}

fn script(mode: Failure, at: u64, first: usize, nodes: usize) -> FailureScript {
    match mode {
        Failure::Single => FailureScript::simultaneous(at, first, 1, nodes),
        Failure::Simultaneous => FailureScript::simultaneous(at, first, 2, nodes),
        Failure::Overlapping(substep) => FailureScript::new(vec![
            FailureEvent {
                when: FailAt::Iteration(at),
                ranks: vec![first],
            },
            FailureEvent {
                when: FailAt::RecoverySubstep {
                    after_iteration: at,
                    substep,
                },
                ranks: vec![(first + 2) % nodes],
            },
        ]),
    }
}

fn failed_count(mode: Failure) -> usize {
    match mode {
        Failure::Single => 1,
        _ => 2,
    }
}

#[derive(Clone, Copy, Debug)]
enum Prot {
    Esr,
    Cr,
}

fn run_cell(
    solver: Solver,
    policy: RecoveryPolicy,
    mode: Failure,
    nodes: usize,
    grid: (usize, usize),
    at: u64,
    first: usize,
) -> ExperimentResult {
    run_cell_prot(Prot::Esr, solver, policy, mode, nodes, grid, at, first)
}

#[allow(clippy::too_many_arguments)]
fn run_cell_prot(
    prot: Prot,
    solver: Solver,
    policy: RecoveryPolicy,
    mode: Failure,
    nodes: usize,
    grid: (usize, usize),
    at: u64,
    first: usize,
) -> ExperimentResult {
    let a = poisson2d(grid.0, grid.1);
    let problem = Problem::with_ones_solution(a);
    let mut cfg = SolverConfig::resilient_with_policy(2, policy);
    if matches!(prot, Prot::Cr) {
        let res = cfg.resilience.take().unwrap();
        cfg.resilience = Some(res.with_protection(Protection::Checkpoint(
            CrConfig::default().with_interval(4).with_copies(2),
        )));
    }
    let cost = CostModel::default();
    let sc = script(mode, at, first, nodes);
    let res = match solver {
        Solver::Pcg => run_pcg(&problem, nodes, &cfg, cost, sc),
        Solver::PipeCg => run_pipecg(&problem, nodes, &cfg, cost, sc),
        Solver::BiCgStab => run_bicgstab(&problem, nodes, &cfg, cost, sc),
    }
    .expect("every engine-backed cell is a supported configuration");
    let label = format!("{prot:?} × {solver:?} × {policy:?} × {mode:?} (N={nodes})");
    assert!(res.converged, "{label}: did not converge");
    let err = res.x.iter().map(|xi| (xi - 1.0).abs()).fold(0.0, f64::max);
    assert!(err < 1e-6, "{label}: reconstruction not exact, err={err}");
    assert_eq!(res.recoveries, 1, "{label}");
    assert_eq!(res.ranks_recovered, failed_count(mode), "{label}");
    // Where the policy left ranks uncovered, they retired and their
    // subdomains were adopted; the assembled solution is still complete
    // (checked by the exactness bound above, which spans every row).
    let expect_retired = match policy {
        RecoveryPolicy::Replace => 0,
        RecoveryPolicy::Spares(k) => failed_count(mode).saturating_sub(k),
        RecoveryPolicy::Shrink => failed_count(mode),
    };
    assert_eq!(res.retired_nodes(), expect_retired, "{label}");
    // Every completed recovery leaves a per-substep virtual-time timeline
    // on the result: one per recovery event, flavored by the protection,
    // with the final attempt covering all five substep labels and no
    // negative segment durations.
    assert_eq!(res.recovery_timelines.len(), 1, "{label}: timeline count");
    let tl = &res.recovery_timelines[0];
    let (flavor, substeps): (&str, [&str; 5]) = match prot {
        Prot::Esr => ("esr", ["setup", "gather", "rebuild", "xsolve", "commit"]),
        Prot::Cr => ("cr", ["setup", "fetch", "epoch", "idle", "commit"]),
    };
    assert_eq!(tl.flavor, flavor, "{label}: timeline flavor");
    assert!(!tl.segments.is_empty(), "{label}: empty substep timeline");
    let last_attempt = tl.segments.iter().map(|s| s.attempt).max().unwrap();
    for want in substeps {
        assert!(
            tl.segments
                .iter()
                .any(|s| s.attempt == last_attempt && s.label == want),
            "{label}: final attempt lacks substep {want:?}"
        );
    }
    assert!(
        tl.segments.iter().all(|s| s.vtime >= 0.0),
        "{label}: negative substep vtime"
    );
    res
}

#[test]
fn single_failure_full_matrix_n7() {
    for solver in SOLVERS {
        for policy in policies() {
            run_cell(solver, policy, Failure::Single, 7, (14, 14), 5, 3);
        }
    }
}

#[test]
fn simultaneous_failures_full_matrix_n7() {
    // ψ = 2 > the Spares(1) pool: a *mixed* event — rank 2 rebuilds on the
    // spare, rank 3 is adopted by a survivor, in one recovery.
    for solver in SOLVERS {
        for policy in policies() {
            run_cell(solver, policy, Failure::Simultaneous, 7, (14, 14), 5, 2);
        }
    }
}

#[test]
fn overlapping_failures_full_matrix_n7() {
    // A second node dies at every restart substep of the first event
    // (paper Sec. 4.1: restart with the enlarged failed set) — under
    // Spares(1)/Shrink the restart must also re-derive the grant and the
    // adoption plan.
    for solver in SOLVERS {
        for policy in policies() {
            for substep in 0..4 {
                run_cell(
                    solver,
                    policy,
                    Failure::Overlapping(substep),
                    7,
                    (14, 14),
                    5,
                    2,
                );
            }
        }
    }
}

#[test]
fn full_matrix_n13() {
    // The same grid at N = 13: fold-in/out collective sizes, uneven
    // 13-way partition of a 15×15 grid, wrap-around failed ranks. One
    // overlap substep suffices here (all four are swept at N = 7).
    for solver in SOLVERS {
        for policy in policies() {
            run_cell(solver, policy, Failure::Single, 13, (15, 15), 4, 7);
            run_cell(solver, policy, Failure::Simultaneous, 13, (15, 15), 6, 11);
            run_cell(solver, policy, Failure::Overlapping(2), 13, (15, 15), 5, 6);
        }
    }
}

#[test]
fn checkpoint_protection_full_matrix_n7() {
    // The C/R half of the protection axis: every solver × policy cell
    // runs single, simultaneous, and overlapping failures through the
    // rollback flavor (deposits every 4 iterations, 2 replicas per block).
    for solver in SOLVERS {
        for policy in policies() {
            run_cell_prot(Prot::Cr, solver, policy, Failure::Single, 7, (14, 14), 5, 3);
            run_cell_prot(
                Prot::Cr,
                solver,
                policy,
                Failure::Simultaneous,
                7,
                (14, 14),
                5,
                2,
            );
            run_cell_prot(
                Prot::Cr,
                solver,
                policy,
                Failure::Overlapping(2),
                7,
                (14, 14),
                5,
                2,
            );
        }
    }
}

#[test]
fn checkpoint_protection_full_matrix_n13() {
    for solver in SOLVERS {
        for policy in policies() {
            run_cell_prot(
                Prot::Cr,
                solver,
                policy,
                Failure::Single,
                13,
                (15, 15),
                4,
                7,
            );
            run_cell_prot(
                Prot::Cr,
                solver,
                policy,
                Failure::Simultaneous,
                13,
                (15, 15),
                6,
                11,
            );
        }
    }
}

#[test]
fn spares_cover_then_run_dry_for_every_solver() {
    // Two events against a pool of 2: the first (ψ=2) consumes the whole
    // pool (pure replacement, no retirement), the second (ψ=1) finds it
    // dry and shrinks. Exercises the pool bookkeeping end-to-end on every
    // engine-backed solver.
    for solver in SOLVERS {
        let a = poisson2d(14, 14);
        let problem = Problem::with_ones_solution(a);
        let cfg = SolverConfig::resilient_with_policy(2, RecoveryPolicy::Spares(2));
        let cost = CostModel::default();
        let sc = FailureScript::at_iterations(7, &[(3, 1), (3, 5), (9, 2)]);
        let res = match solver {
            Solver::Pcg => run_pcg(&problem, 7, &cfg, cost, sc),
            Solver::PipeCg => run_pipecg(&problem, 7, &cfg, cost, sc),
            Solver::BiCgStab => run_bicgstab(&problem, 7, &cfg, cost, sc),
        }
        .unwrap();
        assert!(res.converged, "{solver:?}");
        let err = res.x.iter().map(|xi| (xi - 1.0).abs()).fold(0.0, f64::max);
        assert!(err < 1e-6, "{solver:?}: err={err}");
        assert_eq!(res.recoveries, 2, "{solver:?}");
        assert_eq!(res.ranks_recovered, 3, "{solver:?}");
        assert_eq!(res.retired_nodes(), 1, "{solver:?}");
    }
}

#[test]
fn shrink_after_shrink_for_every_solver() {
    // Failure → shrink → another failure on the already-shrunken cluster:
    // the second event runs on a non-uniform partition over a group
    // communicator, with re-derived redundancy targets — for all three
    // engine-backed solvers (the pipelined solver additionally
    // re-bootstraps its recurrences after each shrink).
    for solver in SOLVERS {
        let a = poisson2d(14, 14);
        let problem = Problem::with_ones_solution(a);
        let cfg = SolverConfig::resilient_with_policy(2, RecoveryPolicy::Shrink);
        let cost = CostModel::default();
        let sc = FailureScript::at_iterations(7, &[(3, 4), (9, 0)]);
        let res = match solver {
            Solver::Pcg => run_pcg(&problem, 7, &cfg, cost, sc),
            Solver::PipeCg => run_pipecg(&problem, 7, &cfg, cost, sc),
            Solver::BiCgStab => run_bicgstab(&problem, 7, &cfg, cost, sc),
        }
        .unwrap();
        assert!(res.converged, "{solver:?}");
        let err = res.x.iter().map(|xi| (xi - 1.0).abs()).fold(0.0, f64::max);
        assert!(err < 1e-6, "{solver:?}: err={err}");
        assert_eq!(res.recoveries, 2, "{solver:?}");
        assert_eq!(res.retired_nodes(), 2, "{solver:?}");
    }
}

#[test]
fn shrink_to_single_survivor_for_every_solver() {
    // ψ = φ = N−1 under Shrink: a single survivor adopts the entire
    // system and finishes the solve alone — for all three solvers.
    for solver in SOLVERS {
        let a = poisson2d(12, 12);
        let problem = Problem::with_ones_solution(a);
        let cfg = SolverConfig::resilient_with_policy(4, RecoveryPolicy::Shrink);
        let cost = CostModel::default();
        let sc = FailureScript::simultaneous(4, 1, 4, 5);
        let res = match solver {
            Solver::Pcg => run_pcg(&problem, 5, &cfg, cost, sc),
            Solver::PipeCg => run_pipecg(&problem, 5, &cfg, cost, sc),
            Solver::BiCgStab => run_bicgstab(&problem, 5, &cfg, cost, sc),
        }
        .unwrap();
        assert!(res.converged, "{solver:?}");
        let err = res.x.iter().map(|xi| (xi - 1.0).abs()).fold(0.0, f64::max);
        assert!(err < 1e-6, "{solver:?}: err={err}");
        assert_eq!(res.retired_nodes(), 4, "{solver:?}");
        let survivor = res.per_node.iter().find(|o| !o.retired).unwrap();
        assert_eq!(survivor.x_loc.len(), 12 * 12, "{solver:?}");
    }
}

#[test]
fn shrink_at_iteration_zero_for_every_solver() {
    // Failure at the first boundary: PCG/PipeCG have no p(j-1) yet (the
    // adopter reconstructs from the current-generation copies alone and
    // the recurrences restart through the β = 0 branch); BiCGSTAB has
    // already scattered both of its channels.
    for solver in SOLVERS {
        let a = poisson2d(12, 12);
        let problem = Problem::with_ones_solution(a);
        let cfg = SolverConfig::resilient_with_policy(2, RecoveryPolicy::Shrink);
        let cost = CostModel::default();
        let sc = FailureScript::simultaneous(0, 1, 2, 6);
        let res = match solver {
            Solver::Pcg => run_pcg(&problem, 6, &cfg, cost, sc),
            Solver::PipeCg => run_pipecg(&problem, 6, &cfg, cost, sc),
            Solver::BiCgStab => run_bicgstab(&problem, 6, &cfg, cost, sc),
        }
        .unwrap();
        assert!(res.converged, "{solver:?}");
        let err = res.x.iter().map(|xi| (xi - 1.0).abs()).fold(0.0, f64::max);
        assert!(err < 1e-6, "{solver:?}: err={err}");
        assert_eq!(res.retired_nodes(), 2, "{solver:?}");
    }
}

#[test]
fn covered_spares_match_replace_bitwise_for_every_solver() {
    // While the pool covers every failure, Spares runs the *identical*
    // engine path as Replace — iterations, residual, and virtual time
    // must agree exactly, for all three solvers.
    let a = poisson2d(14, 14);
    let problem = Problem::with_ones_solution(a);
    let cost = CostModel::default();
    let script = || FailureScript::simultaneous(5, 2, 2, 7);
    for solver in SOLVERS {
        let replace = SolverConfig::resilient_with_policy(2, RecoveryPolicy::Replace);
        let spares = SolverConfig::resilient_with_policy(2, RecoveryPolicy::Spares(4));
        let (a_res, b_res) = match solver {
            Solver::Pcg => (
                run_pcg(&problem, 7, &replace, cost, script()).unwrap(),
                run_pcg(&problem, 7, &spares, cost, script()).unwrap(),
            ),
            Solver::PipeCg => (
                run_pipecg(&problem, 7, &replace, cost, script()).unwrap(),
                run_pipecg(&problem, 7, &spares, cost, script()).unwrap(),
            ),
            Solver::BiCgStab => (
                run_bicgstab(&problem, 7, &replace, cost, script()).unwrap(),
                run_bicgstab(&problem, 7, &spares, cost, script()).unwrap(),
            ),
        };
        assert_eq!(a_res.iterations, b_res.iterations, "{solver:?}");
        assert_eq!(a_res.solver_residual, b_res.solver_residual, "{solver:?}");
        assert_eq!(a_res.vtime, b_res.vtime, "{solver:?}");
        assert_eq!(b_res.retired_nodes(), 0, "{solver:?}");
    }
}
