//! # proptest (offline shim)
//!
//! A minimal, dependency-free re-implementation of the subset of the
//! [`proptest`](https://crates.io/crates/proptest) API that this workspace's
//! property suites use. The build environment has no network access to a
//! crates registry, so the real crate cannot be fetched; this shim keeps the
//! test sources byte-identical to what they would be against real proptest
//! (same imports, same macros) while remaining self-contained.
//!
//! Supported surface:
//!
//! * [`proptest!`] with an optional `#![proptest_config(..)]` inner
//!   attribute and `arg in strategy` test signatures;
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_assume!`];
//! * [`strategy::Strategy`] with `prop_map`, implemented for integer and
//!   float ranges (half-open and inclusive), tuples up to arity 6, and
//!   [`prelude::any`] for the primitive types;
//! * [`collection::vec`] with exact, half-open, or inclusive size ranges;
//! * [`strategy::Just`];
//! * [`test_runner::ProptestConfig::with_cases`].
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case panics with the case index and the
//!   per-test RNG seed; cases are deterministic per (test name, case index),
//!   so failures reproduce exactly on re-run.
//! * **No persistence files**, no fork, no timeout.
//! * Value generation is uniform over the requested range rather than
//!   proptest's bias-toward-edge-cases distributions.

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

mod rng;

pub use rng::TestRng;

/// Assert a boolean condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            panic!($($fmt)*);
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `(left == right)`\n  left: `{:?}`,\n right: `{:?}`",
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(*lhs == *rhs, $($fmt)*);
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs != *rhs,
            "assertion failed: `(left != right)`\n  left: `{:?}`,\n right: `{:?}`",
            lhs,
            rhs
        );
    }};
}

/// Discard the current case unless `cond` holds.
///
/// Expands to an early `Err(Reject)` return from the per-case closure the
/// [`proptest!`] macro wraps each body in, so it is only valid at the top
/// level of a `proptest!` test body — which matches real proptest's
/// requirement that the assume happen before the expensive part of a case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Define property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `body` over `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_define! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_define! {
            @cfg($crate::test_runner::ProptestConfig::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_define {
    (@cfg($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let __seed = $crate::TestRng::seed_for(stringify!($name));
                for __case in 0..__config.cases {
                    let mut __rng = $crate::TestRng::for_case(__seed, __case);
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strat),
                            &mut __rng,
                        );
                    )*
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(
                            || -> ::std::result::Result<
                                (),
                                $crate::test_runner::TestCaseError,
                            > {
                                $body
                                ::std::result::Result::Ok(())
                            },
                        ),
                    );
                    match __outcome {
                        ::std::result::Result::Ok(::std::result::Result::Ok(())) => {}
                        // Rejected by prop_assume!: skip, try the next case.
                        ::std::result::Result::Ok(::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject,
                        )) => {}
                        ::std::result::Result::Err(__payload) => {
                            eprintln!(
                                "proptest (shim): test `{}` failed at case {} \
                                 (seed {:#018x}); cases are deterministic, \
                                 re-running reproduces this failure",
                                stringify!($name),
                                __case,
                                __seed,
                            );
                            ::std::panic::resume_unwind(__payload);
                        }
                    }
                }
            }
        )*
    };
}
