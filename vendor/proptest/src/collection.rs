//! Collection strategies: `proptest::collection::vec`.

use std::ops::{Range, RangeInclusive};

use crate::rng::TestRng;
use crate::strategy::Strategy;

/// Anything usable as the size argument of [`vec`]: an exact length, a
/// half-open range, or an inclusive range.
pub trait IntoSizeRange {
    /// Pick a concrete length.
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl IntoSizeRange for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl IntoSizeRange for Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.generate(rng)
    }
}

impl IntoSizeRange for RangeInclusive<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.generate(rng)
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
#[derive(Clone, Debug)]
pub struct VecStrategy<S, R> {
    element: S,
    size: R,
}

impl<S: Strategy, R: IntoSizeRange> Strategy for VecStrategy<S, R> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `proptest::collection::vec(element, size)`.
pub fn vec<S: Strategy, R: IntoSizeRange>(element: S, size: R) -> VecStrategy<S, R> {
    VecStrategy { element, size }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_and_ranged_sizes() {
        let mut rng = TestRng::for_case(7, 0);
        for _ in 0..200 {
            assert_eq!(vec(0usize..4, 9usize).generate(&mut rng).len(), 9);
            let v = vec(0usize..4, 2usize..6).generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            let w = vec(0usize..4, 0usize..=3).generate(&mut rng);
            assert!(w.len() <= 3);
        }
    }

    #[test]
    fn nested_vec_composes() {
        let mut rng = TestRng::for_case(8, 0);
        let v = vec(vec(0usize..5, 0usize..=5), 4usize).generate(&mut rng);
        assert_eq!(v.len(), 4);
        assert!(v.iter().all(|inner| inner.len() <= 5));
    }
}
