//! Runner configuration and per-case control flow.

/// Configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; the suites in this workspace always
        // set an explicit count, so this only matters for new tests.
        ProptestConfig { cases: 256 }
    }
}

/// Why a test case ended without completing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TestCaseError {
    /// `prop_assume!` failed: the inputs don't satisfy the precondition and
    /// the case is silently discarded.
    Reject,
}
