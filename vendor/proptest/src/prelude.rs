//! The glob-import surface: `use proptest::prelude::*;`.

pub use crate::strategy::{Any, Arbitrary, Just, Strategy};
pub use crate::test_runner::{ProptestConfig, TestCaseError};
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

/// The canonical strategy for "any value of type `T`".
pub fn any<T: Arbitrary>() -> Any<T> {
    Any::default()
}
