//! Deterministic RNG for the shim: SplitMix64 seeded from the test name.
//!
//! Each (test, case) pair gets an independent, platform-stable stream, so a
//! failure report of "case k" is exactly reproducible on any machine.

/// SplitMix64 — tiny, fast, and statistically fine for test-data generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Derive a stable 64-bit seed from a test name (FNV-1a).
    pub fn seed_for(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// The RNG for one test case: independent stream per case index.
    pub fn for_case(seed: u64, case: u32) -> Self {
        let mut rng = TestRng {
            state: seed ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        };
        // Warm up so nearby case indices decorrelate immediately.
        rng.next_u64();
        rng.next_u64();
        rng
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`. `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "TestRng::below(0)");
        // Multiply-shift rejection-free mapping; bias is < 2^-64 per draw,
        // irrelevant for test-case generation.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_case() {
        let seed = TestRng::seed_for("some_test");
        let a: Vec<u64> = {
            let mut r = TestRng::for_case(seed, 3);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_case(seed, 3);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = TestRng::for_case(seed, 4);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn below_in_range() {
        let mut r = TestRng::for_case(1, 0);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    fn unit_in_range() {
        let mut r = TestRng::for_case(2, 0);
        for _ in 0..1000 {
            let x = r.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
