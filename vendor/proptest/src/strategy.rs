//! The [`Strategy`] trait and the built-in strategies the workspace uses:
//! ranges, tuples, `any`, `Just`, and `prop_map`.

use std::ops::{Range, RangeInclusive};

use crate::rng::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy is
/// just a deterministic function of the RNG stream.
pub trait Strategy {
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }
}

/// A strategy behind a reference generates what the referent generates.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy ([`crate::prelude::any`]).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy returned by [`crate::prelude::any`].
#[derive(Clone, Debug)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T> Default for Any<T> {
    fn default() -> Self {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, wide dynamic range; real proptest also
        // generates non-finite values but no suite here relies on that.
        let mag = rng.unit_f64() * 2.0_f64.powi(rng.below(1201) as i32 - 600);
        if rng.next_u64() & 1 == 1 {
            -mag
        } else {
            mag
        }
    }
}

// --- integer and float ranges ------------------------------------------

macro_rules! range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy {self:?}");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy {self:?}");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range of a 64-bit type.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy {self:?}");
                let x = self.start + (rng.unit_f64() as $t) * (self.end - self.start);
                // Guard against rounding up to the excluded endpoint.
                if x >= self.end { self.start } else { x }
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy {self:?}");
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}
range_strategy_float!(f32, f64);

// --- tuples -------------------------------------------------------------

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::any;

    fn rng() -> TestRng {
        TestRng::for_case(42, 0)
    }

    #[test]
    fn int_ranges_respect_bounds() {
        let mut r = rng();
        for _ in 0..2000 {
            let v = (3usize..17).generate(&mut r);
            assert!((3..17).contains(&v));
            let w = (0usize..=5).generate(&mut r);
            assert!(w <= 5);
            let n = (-4i64..9).generate(&mut r);
            assert!((-4..9).contains(&n));
        }
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut r = rng();
        for _ in 0..2000 {
            let v = (-1e6f64..1e6).generate(&mut r);
            assert!((-1e6..1e6).contains(&v));
        }
    }

    #[test]
    fn tuples_and_map_compose() {
        let strat = (1usize..5, 0u64..10).prop_map(|(a, b)| a as u64 + b);
        let mut r = rng();
        for _ in 0..100 {
            assert!(strat.generate(&mut r) < 15);
        }
    }

    #[test]
    fn any_u64_varies() {
        let mut r = rng();
        let a = any::<u64>().generate(&mut r);
        let b = any::<u64>().generate(&mut r);
        assert_ne!(a, b);
    }

    #[test]
    fn just_clones() {
        let mut r = rng();
        assert_eq!(Just(vec![1, 2]).generate(&mut r), vec![1, 2]);
    }
}
