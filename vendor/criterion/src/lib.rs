//! # criterion (offline shim)
//!
//! A minimal, dependency-free stand-in for the subset of the
//! [`criterion`](https://crates.io/crates/criterion) API used by
//! `crates/bench/benches/micro.rs`. The build environment cannot reach a
//! crates registry, so the real crate is unavailable; this shim keeps the
//! bench source unchanged and still produces useful wall-clock numbers.
//!
//! Measurement model: per benchmark, a short warm-up, then timed batches
//! until ~`measurement_time` has elapsed; reports mean time per iteration
//! and the spread across batches. No statistical analysis, no HTML reports,
//! no comparison against saved baselines.

use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (the real crate's is a
/// compiler-fence wrapper; std's is the supported equivalent).
pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            mode: Mode::WarmUp {
                until: self.warm_up_time,
            },
            batches: Vec::new(),
        };
        f(&mut b); // warm-up pass
        b.mode = Mode::Measure {
            budget: self.measurement_time,
        };
        f(&mut b); // measurement pass
        b.report(id);
        self
    }
}

enum Mode {
    WarmUp { until: Duration },
    Measure { budget: Duration },
}

/// Passed to the closure given to [`Criterion::bench_function`].
pub struct Bencher {
    mode: Mode,
    /// (iterations, elapsed) per timed batch.
    batches: Vec<(u64, Duration)>,
}

impl Bencher {
    /// Time the routine. Runs it in growing batches so that per-iteration
    /// timer overhead is amortized, matching the real crate's contract that
    /// the closure may be called many times.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        match self.mode {
            Mode::WarmUp { until } => {
                let start = Instant::now();
                while start.elapsed() < until {
                    black_box(routine());
                }
            }
            Mode::Measure { budget } => {
                let start = Instant::now();
                let mut batch: u64 = 1;
                while start.elapsed() < budget {
                    let t0 = Instant::now();
                    for _ in 0..batch {
                        black_box(routine());
                    }
                    self.batches.push((batch, t0.elapsed()));
                    if batch < 1 << 20 {
                        batch *= 2;
                    }
                }
            }
        }
    }

    fn report(&self, id: &str) {
        let iters: u64 = self.batches.iter().map(|(n, _)| n).sum();
        if iters == 0 {
            println!("{id:<40} (no measurements)");
            return;
        }
        let total: Duration = self.batches.iter().map(|(_, t)| *t).sum();
        let mean = total.as_nanos() as f64 / iters as f64;
        let per_batch: Vec<f64> = self
            .batches
            .iter()
            .map(|(n, t)| t.as_nanos() as f64 / *n as f64)
            .collect();
        let lo = per_batch.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = per_batch.iter().copied().fold(0.0_f64, f64::max);
        println!(
            "{id:<40} time: [{} {} {}]  ({iters} iterations)",
            fmt_ns(lo),
            fmt_ns(mean),
            fmt_ns(hi),
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.3} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.3} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// `criterion_group!(name, target, ...)` — defines `fn name()` running each
/// target against a fresh default [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// `criterion_main!(group, ...)` — the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            // Keep bench binaries well-behaved under `cargo test`, which
            // passes libtest flags; a bench run takes no arguments.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(10));
        c.bench_function("spin", |b| b.iter(|| (0..100u64).sum::<u64>()));
    }
}
